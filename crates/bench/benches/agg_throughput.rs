//! Aggregation throughput: the cost of the data-weighted average
//! (Algorithm 1 lines 11/12/18/19) vs model dimension and worker count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hieradmo_tensor::Vector;

fn bench_weighted_average(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_aggregation");
    for &dim in &[1_000usize, 10_000, 100_000] {
        for &workers in &[4usize, 16, 100] {
            let vectors: Vec<Vector> = (0..workers)
                .map(|i| Vector::filled(dim, i as f32))
                .collect();
            group.bench_with_input(
                BenchmarkId::new(format!("dim{dim}"), workers),
                &vectors,
                |b, vectors| {
                    b.iter(|| {
                        Vector::weighted_average(
                            vectors.iter().map(|v| (1.0 / vectors.len() as f64, v)),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_weighted_average
}
criterion_main!(benches);
