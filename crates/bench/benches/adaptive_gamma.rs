//! Cost of the adaptive-momentum machinery (Eqs. 6–7): the weighted
//! cosine over per-worker accumulators — the ablation target for the
//! "does adaptation cost anything?" question (it is O(N·d) per edge
//! aggregation, negligible next to a gradient).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hieradmo_core::adaptive::{clamp_gamma, weighted_cosine};
use hieradmo_tensor::Vector;

fn bench_adaptation(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_gamma");
    for &dim in &[10_000usize, 100_000] {
        let workers: Vec<(Vector, Vector)> = (0..4)
            .map(|i| {
                (
                    Vector::filled(dim, 1.0 + i as f32),
                    Vector::filled(dim, -1.0),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("eq6_eq7", dim), &workers, |b, ws| {
            b.iter(|| {
                let cos = weighted_cosine(ws.iter().map(|(g, y)| (0.25, g, y)));
                clamp_gamma(cos)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_adaptation
}
criterion_main!(benches);
