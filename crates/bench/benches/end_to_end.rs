//! End-to-end shapes: miniature versions of each table/figure pipeline so
//! `cargo bench` exercises every experiment path. The real (full-length)
//! regenerators are the binaries in `src/bin/` — these benches keep the
//! pipelines honest and track their cost per tick.

use criterion::{criterion_group, criterion_main, Criterion};
use hieradmo_bench::harness::run_partitioned;
use hieradmo_bench::{Scale, Workload};
use hieradmo_core::algorithms::{FedNag, HierAdMo, HierFavg};
use hieradmo_core::{RunConfig, Strategy};
use hieradmo_data::partition::x_class_partition;

fn mini_cfg(tau: usize, pi: usize, total: usize) -> RunConfig {
    RunConfig {
        tau,
        pi,
        total_iters: total,
        batch_size: 8,
        eval_every: total,
        threads: Some(1),
        ..RunConfig::default()
    }
}

fn bench_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    let workload = Workload::LogisticMnist;
    let tt = workload.dataset(Scale::Quick, 1);
    let model = workload.model(&tt.train, 1);

    // Table II shape: three algorithms (one per category) on one workload.
    group.bench_function("table2_mini", |b| {
        let shards = x_class_partition(&tt.train, 4, 5, 1);
        let algos: Vec<Box<dyn Strategy>> = vec![
            Box::new(HierAdMo::adaptive(0.01, 0.5)),
            Box::new(HierFavg::new(0.01)),
            Box::new(FedNag::new(0.01, 0.5)),
        ];
        b.iter(|| {
            for a in &algos {
                run_partitioned(
                    a.as_ref(),
                    &model,
                    &shards,
                    &tt.test,
                    &mini_cfg(5, 2, 20),
                    2,
                );
            }
        })
    });

    // Fig. 2(a) shape: τ sweep.
    group.bench_function("fig2a_mini", |b| {
        let shards = x_class_partition(&tt.train, 4, 5, 1);
        let algo = HierAdMo::adaptive(0.01, 0.5);
        b.iter(|| {
            for tau in [5usize, 10] {
                run_partitioned(
                    &algo,
                    &model,
                    &shards,
                    &tt.test,
                    &mini_cfg(tau, 2, tau * 4),
                    2,
                );
            }
        })
    });

    // Fig. 2(e) shape: non-iid sweep.
    group.bench_function("fig2efg_mini", |b| {
        let algo = HierAdMo::adaptive(0.01, 0.5);
        b.iter(|| {
            for x in [3usize, 6, 9] {
                let shards = x_class_partition(&tt.train, 4, x, 1);
                run_partitioned(&algo, &model, &shards, &tt.test, &mini_cfg(5, 2, 20), 2);
            }
        })
    });

    // Fig. 2(i) shape: fixed-vs-adaptive γℓ.
    group.bench_function("fig2ijk_mini", |b| {
        let shards = x_class_partition(&tt.train, 4, 5, 1);
        b.iter(|| {
            for ge in [0.2f32, 0.8] {
                let algo = HierAdMo::reduced(0.01, 0.5, ge);
                run_partitioned(&algo, &model, &shards, &tt.test, &mini_cfg(5, 2, 20), 2);
            }
            let algo = HierAdMo::adaptive(0.01, 0.5);
            run_partitioned(&algo, &model, &shards, &tt.test, &mini_cfg(5, 2, 20), 2);
        })
    });

    // Execution-engine thread sweep: the same pipeline at 1/2/4/max pool
    // threads. Results are bitwise identical across the sweep (the engine
    // chunks in fixed order), so any spread here is pure wall-clock.
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut sweep = vec![1usize, 2, 4, max];
    sweep.sort_unstable();
    sweep.dedup();
    for threads in sweep {
        let shards = x_class_partition(&tt.train, 8, 5, 1);
        let algo = HierAdMo::adaptive(0.01, 0.5);
        let cfg = RunConfig {
            threads: Some(threads),
            ..mini_cfg(5, 2, 40)
        };
        group.bench_function(format!("pool_threads_{threads}"), |b| {
            b.iter(|| run_partitioned(&algo, &model, &shards, &tt.test, &cfg, 2))
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pipelines
}
criterion_main!(benches);
