//! Per-algorithm cost of one full federated round (τ·π local iterations +
//! edge + cloud aggregations) on the logistic-MNIST workload.

use criterion::{criterion_group, criterion_main, Criterion};
use hieradmo_bench::harness::run_partitioned;
use hieradmo_bench::{Scale, Workload};
use hieradmo_core::algorithms::table2_lineup;
use hieradmo_core::RunConfig;
use hieradmo_data::partition::x_class_partition;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_round");
    let workload = Workload::LogisticMnist;
    let tt = workload.dataset(Scale::Quick, 1);
    let model = workload.model(&tt.train, 1);
    let shards = x_class_partition(&tt.train, 4, 5, 1);
    let cfg = RunConfig {
        tau: 5,
        pi: 2,
        total_iters: 10, // exactly one cloud round
        batch_size: 8,
        eval_every: 10,
        threads: Some(1),
        ..RunConfig::default()
    };
    for algo in table2_lineup(0.01, 0.5, 0.5) {
        group.bench_function(algo.name(), |b| {
            b.iter(|| run_partitioned(algo.as_ref(), &model, &shards, &tt.test, &cfg, 2))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_algorithms
}
criterion_main!(benches);
