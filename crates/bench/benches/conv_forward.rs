//! Layer micro-benchmarks: convolution forward/backward — the dominant
//! cost of the CNN/VGG/ResNet workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use hieradmo_tensor::conv;
use hieradmo_tensor::Tensor4;

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    // The CNN-on-MNIST first layer: 1→8 channels, 5×5, 28×28, pad 2.
    let input = Tensor4::from_data(
        1,
        1,
        28,
        28,
        (0..784).map(|i| (i as f32 * 0.01).sin()).collect(),
    );
    let weight = Tensor4::from_data(
        8,
        1,
        5,
        5,
        (0..200).map(|i| (i as f32 * 0.1).cos()).collect(),
    );
    let bias = vec![0.0f32; 8];
    group.bench_function("forward_mnist_l1_direct", |b| {
        b.iter(|| conv::conv2d_forward_direct(&input, &weight, &bias, 2))
    });
    group.bench_function("forward_mnist_l1_im2col", |b| {
        b.iter(|| conv::conv2d_forward_im2col(&input, &weight, &bias, 2))
    });
    group.bench_function("forward_mnist_l1_im2col_scratch", |b| {
        // The steady-state layer path: scratch and output held across calls.
        let mut scratch = conv::Im2colScratch::new();
        let mut out = Tensor4::zeros(0, 0, 0, 0);
        b.iter(|| {
            conv::conv2d_forward_into(&input, &weight, &bias, 2, &mut scratch, &mut out);
            out.at(0, 0, 0, 0)
        })
    });
    let out = conv::conv2d_forward(&input, &weight, &bias, 2);
    let ones = Tensor4::from_data(out.n(), out.c(), out.h(), out.w(), vec![1.0; out.len()]);
    group.bench_function("backward_mnist_l1", |b| {
        b.iter(|| conv::conv2d_backward(&input, &weight, 2, &ones))
    });
    group.bench_function("maxpool_28", |b| {
        let big = Tensor4::zeros(1, 8, 28, 28);
        b.iter(|| conv::max_pool2x2_forward(&big))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_conv
}
criterion_main!(benches);
