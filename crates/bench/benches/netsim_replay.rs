//! Trace-replay throughput of the network simulator (Fig. 2(h)/(l)
//! substrate): a full T=1000 timeline for both architectures.

use criterion::{criterion_group, criterion_main, Criterion};
use hieradmo_netsim::{simulate_timeline, Architecture, NetworkEnv, TraceConfig};
use hieradmo_topology::{Hierarchy, Schedule};

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_replay");
    let env = NetworkEnv::paper_testbed(4);
    let three = TraceConfig::new(
        Schedule::three_tier(10, 2, 1000).unwrap(),
        Hierarchy::balanced(2, 2),
        Architecture::ThreeTier,
        220_000,
        1,
    );
    group.bench_function("three_tier_t1000", |b| {
        b.iter(|| simulate_timeline(&env, &three))
    });
    let two = TraceConfig::new(
        Schedule::two_tier(20, 1000).unwrap(),
        Hierarchy::two_tier(4),
        Architecture::TwoTier,
        220_000,
        1,
    );
    group.bench_function("two_tier_t1000", |b| {
        b.iter(|| simulate_timeline(&env, &two))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_replay
}
criterion_main!(benches);
