//! Property tests tying the replay path (`simulate_timeline`) to the
//! on-demand sampling path (`DelaySampler`): both must derive the *same*
//! delay sequence from the same seed, and every timeline must be strictly
//! monotone in simulated time.

use hieradmo_netsim::{simulate_timeline, Architecture, DelaySampler, NetworkEnv, TraceConfig};
use hieradmo_topology::{Hierarchy, Schedule};
use proptest::prelude::*;

/// An independent reimplementation of the three-tier replay loop that pulls
/// every delay on demand from a [`DelaySampler`] instead of a raw RNG. If
/// the sampler refactor ever reordered or dropped a draw, this diverges
/// from `simulate_timeline` immediately.
fn replay_three_tier_on_demand(env: &NetworkEnv, cfg: &TraceConfig) -> Vec<f64> {
    let mut sampler = DelaySampler::new(cfg.seed);
    let n = cfg.hierarchy.num_workers();
    let l = cfg.hierarchy.num_edges();
    let mut now_ms = 0.0f64;
    let mut cumulative = Vec::new();
    for tick in cfg.schedule.ticks() {
        now_ms += (0..n)
            .map(|i| sampler.compute_ms(&env.worker_devices[i]))
            .fold(0.0f64, f64::max);
        if tick.edge_aggregation.is_some() {
            now_ms += (0..l)
                .map(|e| {
                    let flows = cfg.hierarchy.workers_in_edge(e);
                    sampler.shared_transfer_ms(&env.worker_edge_link, cfg.upload_bytes, flows)
                })
                .fold(0.0f64, f64::max);
            now_ms += sampler.compute_ms(&env.edge_device);
            if tick.cloud_aggregation.is_some() {
                now_ms += (0..l)
                    .map(|_| sampler.shared_transfer_ms(&env.edge_cloud_link, cfg.upload_bytes, l))
                    .fold(0.0f64, f64::max);
                now_ms += sampler.compute_ms(&env.cloud_device);
                now_ms += (0..l)
                    .map(|_| {
                        sampler.shared_transfer_ms(&env.edge_cloud_link, cfg.download_bytes, l)
                    })
                    .fold(0.0f64, f64::max);
            }
            now_ms += (0..l)
                .map(|e| {
                    let flows = cfg.hierarchy.workers_in_edge(e);
                    sampler.shared_transfer_ms(&env.worker_edge_link, cfg.download_bytes, flows)
                })
                .fold(0.0f64, f64::max);
        }
        cumulative.push(now_ms);
    }
    cumulative
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed ⇒ the replay engine and an on-demand sampler walk the
    /// exact same delay sequence (bitwise, not approximately).
    #[test]
    fn replay_and_on_demand_sampler_agree(
        seed in any::<u64>(),
        edges in 1usize..4,
        wpe in 1usize..4,
        tau in 1usize..6,
        pi in 1usize..4,
        rounds in 1usize..5,
        payload in 1_000u64..2_000_000,
    ) {
        let total = tau * pi * rounds;
        let hierarchy = Hierarchy::balanced(edges, wpe);
        let schedule = Schedule::three_tier(tau, pi, total).unwrap();
        let env = NetworkEnv::paper_testbed(hierarchy.num_workers());
        let cfg = TraceConfig::new(schedule, hierarchy, Architecture::ThreeTier, payload, seed);

        let timeline = simulate_timeline(&env, &cfg);
        let on_demand = replay_three_tier_on_demand(&env, &cfg);
        prop_assert_eq!(on_demand.len(), total);
        for (t, &ms) in on_demand.iter().enumerate() {
            let replay_s = timeline.time_at(t + 1);
            prop_assert_eq!(
                ms / 1000.0,
                replay_s,
                "tick {} diverged: on-demand {} ms vs replay {} s",
                t + 1,
                ms,
                replay_s
            );
        }
    }

    /// Timelines are strictly monotone: every tick costs positive time.
    #[test]
    fn timelines_are_strictly_monotone(
        seed in any::<u64>(),
        two_tier in any::<bool>(),
        tau in 1usize..6,
        pi in 1usize..4,
        rounds in 1usize..5,
        payload in 0u64..2_000_000,
    ) {
        let total = tau * pi * rounds;
        let (hierarchy, architecture, schedule) = if two_tier {
            (
                Hierarchy::two_tier(4),
                Architecture::TwoTier,
                Schedule::two_tier(tau * pi, total).unwrap(),
            )
        } else {
            (
                Hierarchy::balanced(2, 2),
                Architecture::ThreeTier,
                Schedule::three_tier(tau, pi, total).unwrap(),
            )
        };
        let env = NetworkEnv::paper_testbed(4);
        let cfg = TraceConfig::new(schedule, hierarchy, architecture, payload, seed);
        let timeline = simulate_timeline(&env, &cfg);
        let mut prev = 0.0;
        for t in 1..=total {
            let now = timeline.time_at(t);
            prop_assert!(now > prev, "t={} time {} not after {}", t, now, prev);
            prev = now;
        }
    }

    /// Per-stream sampling is self-deterministic and decorrelated across
    /// streams — the property the event-driven runtime's reproducibility
    /// rests on.
    #[test]
    fn stream_samplers_are_deterministic(master in any::<u64>(), stream in 0u64..64) {
        let env = NetworkEnv::paper_testbed(1);
        let mut a = DelaySampler::from_stream(master, stream);
        let mut b = DelaySampler::from_stream(master, stream);
        for _ in 0..8 {
            prop_assert_eq!(
                a.compute_ms(&env.worker_devices[0]),
                b.compute_ms(&env.worker_devices[0])
            );
            prop_assert_eq!(
                a.shared_transfer_ms(&env.worker_edge_link, 10_000, 2),
                b.shared_transfer_ms(&env.worker_edge_link, 10_000, 2)
            );
        }
    }
}
