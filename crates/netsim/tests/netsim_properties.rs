//! Property-based tests for the delay simulator: structural invariants
//! that must hold for any topology, schedule, payload and seed.

use proptest::prelude::*;

use hieradmo_netsim::{simulate_timeline, Architecture, NetworkEnv, TraceConfig};
use hieradmo_topology::{Hierarchy, Schedule};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cumulative time is strictly increasing and deterministic per seed,
    /// for any valid configuration.
    #[test]
    fn timeline_monotone_and_deterministic(
        edges in 1usize..4,
        per_edge in 1usize..4,
        tau in 1usize..6,
        pi in 1usize..4,
        rounds in 1usize..4,
        payload in 1u64..1_000_000,
        seed in 0u64..1000,
        two_tier in any::<bool>(),
    ) {
        let workers = edges * per_edge;
        let total = tau * pi * rounds;
        let (hierarchy, schedule, arch) = if two_tier {
            (
                Hierarchy::two_tier(workers),
                Schedule::two_tier(tau * pi, total).unwrap(),
                Architecture::TwoTier,
            )
        } else {
            (
                Hierarchy::balanced(edges, per_edge),
                Schedule::three_tier(tau, pi, total).unwrap(),
                Architecture::ThreeTier,
            )
        };
        let env = NetworkEnv::paper_testbed(workers);
        let cfg = TraceConfig::new(schedule, hierarchy, arch, payload, seed);
        let a = simulate_timeline(&env, &cfg);
        let b = simulate_timeline(&env, &cfg);
        prop_assert_eq!(&a, &b, "same seed must replay identically");
        let mut prev = 0.0;
        for t in 1..=total {
            let now = a.time_at(t);
            prop_assert!(now > prev, "non-monotone at t={t}");
            prev = now;
        }
        prop_assert!((a.total_seconds() - prev).abs() < 1e-9);
    }

    /// Aggregation ticks cost strictly more than plain compute ticks when
    /// the payload is big enough that serialization dominates compute
    /// jitter (for tiny payloads the lognormal compute noise can mask the
    /// few-ms LAN cost, so the property is quantified over ≥ 5 MB).
    #[test]
    fn aggregation_ticks_cost_extra(
        tau in 2usize..6,
        payload in 5_000_000u64..50_000_000,
        seed in 0u64..1000,
    ) {
        let total = tau * 2;
        let env = NetworkEnv::paper_testbed(4);
        let cfg = TraceConfig::new(
            Schedule::three_tier(tau, 2, total).unwrap(),
            Hierarchy::balanced(2, 2),
            Architecture::ThreeTier,
            payload,
            seed,
        );
        let tl = simulate_timeline(&env, &cfg);
        // Mean duration of the aggregation tick vs the mean plain tick.
        let agg_tick = tl.time_at(tau) - tl.time_at(tau - 1);
        let plain_tick = tl.time_at(tau - 1) / (tau - 1) as f64;
        prop_assert!(
            agg_tick > plain_tick,
            "aggregation tick ({agg_tick}s) should exceed plain tick ({plain_tick}s)"
        );
    }

    /// Larger payloads never make the run faster.
    #[test]
    fn payload_monotonicity(
        small in 1_000u64..100_000,
        factor in 2u64..50,
        seed in 0u64..1000,
    ) {
        let env = NetworkEnv::paper_testbed(4);
        let mk = |payload| {
            TraceConfig::new(
                Schedule::three_tier(5, 2, 20).unwrap(),
                Hierarchy::balanced(2, 2),
                Architecture::ThreeTier,
                payload,
                seed,
            )
        };
        let t_small = simulate_timeline(&env, &mk(small)).total_seconds();
        let t_big = simulate_timeline(&env, &mk(small * factor)).total_seconds();
        prop_assert!(t_big >= t_small,
            "bigger payload ran faster: {t_big} < {t_small}");
    }
}
