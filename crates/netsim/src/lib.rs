//! Trace-driven network/computation delay simulator — the substrate for
//! the paper's Fig. 2(h)/(l) "total training time" experiment.
//!
//! The paper samples per-iteration computation delays on four physical
//! devices (an i3 laptop and three Android phones), edge delays on a
//! MacBook Pro, cloud delays on a GPU server, and communication delays over
//! 5 GHz WiFi / 1 Gbps Ethernet / two ISPs' WAN; it then *replays* the
//! training trace against those samples. Without the physical testbed we do
//! the same thing with stochastic device/link models whose medians come
//! from the public specs of those devices (DESIGN.md §4): the crucial
//! structural property — LAN round-trips are cheap, WAN round-trips are
//! expensive, so three-tier architectures win on wall-clock — is what the
//! link model encodes.
//!
//! # Example
//!
//! ```
//! use hieradmo_netsim::{Architecture, NetworkEnv, TraceConfig, simulate_timeline};
//! use hieradmo_topology::{Hierarchy, Schedule};
//!
//! let hierarchy = Hierarchy::balanced(2, 2);
//! let schedule = Schedule::three_tier(10, 2, 100)?;
//! let env = NetworkEnv::paper_testbed(hierarchy.num_workers());
//! let cfg = TraceConfig::new(schedule, hierarchy, Architecture::ThreeTier, 50_000, 1);
//! let timeline = simulate_timeline(&env, &cfg);
//! assert!(timeline.time_at(100) > timeline.time_at(50));
//! # Ok::<(), hieradmo_topology::ScheduleError>(())
//! ```

#![deny(missing_docs)]

pub mod adversary;
pub mod device;
pub mod fault;
pub mod link;
pub mod payload;
pub mod proto;
pub mod sampler;
pub mod timeline;

pub use adversary::{AdversaryPlan, AdversarySampler, AttackModel, ByzantineWorker};
pub use device::DeviceProfile;
pub use fault::{
    CrashProfile, DelaySpikes, FaultPlan, FaultSampler, LinkFaults, PermanentCrash, TransferOutcome,
};
pub use link::LinkProfile;
pub use sampler::{stream_seed, DelaySampler};
pub use timeline::{
    simulate_timeline, Architecture, NetworkEnv, TimeBreakdown, Timeline, TraceConfig,
};
