//! Network-link delay profiles.
//!
//! One transfer's delay = propagation (RTT/2 with jitter) + serialization
//! (`bytes / bandwidth`). The paper's testbed has three links: 5 GHz WiFi
//! (worker ↔ router), 1 Gbps Ethernet (router ↔ edge node), and the public
//! Internet via two ISPs (edge/worker ↔ cloud). Two-tier architectures pay
//! the WAN price on *every* worker round-trip; three-tier ones only every
//! `π`-th aggregation — exactly the asymmetry Fig. 1 illustrates.
//!
//! These profiles model only *healthy* transfer delay. Unreliability —
//! loss, transient failure, duplication, retry/backoff — is layered on
//! top by [`crate::fault`], which charges each extra attempt through the
//! same delay model so retries stretch the clock consistently.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A network link's delay model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Human-readable link name.
    pub name: String,
    /// Usable bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// One-way base latency in milliseconds.
    pub latency_ms: f64,
    /// Multiplicative jitter range: each transfer's latency is scaled by a
    /// uniform factor in `[1, 1 + jitter]`.
    pub jitter: f64,
}

impl LinkProfile {
    /// Creates a link profile.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth or latency are non-positive, or jitter is
    /// negative.
    pub fn new(name: impl Into<String>, bandwidth_mbps: f64, latency_ms: f64, jitter: f64) -> Self {
        let name = name.into();
        assert!(
            bandwidth_mbps > 0.0,
            "bandwidth must be positive for {name}"
        );
        assert!(latency_ms > 0.0, "latency must be positive for {name}");
        assert!(jitter >= 0.0, "jitter must be non-negative for {name}");
        LinkProfile {
            name,
            bandwidth_mbps,
            latency_ms,
            jitter,
        }
    }

    /// 5 GHz home-router WiFi (HUAWEI Honor X2-class): ~400 Mbps usable,
    /// 3 ms one-way.
    pub fn wifi_5ghz() -> Self {
        LinkProfile::new("wifi-5ghz", 400.0, 3.0, 0.5)
    }

    /// 1 Gbps wired Ethernet (router ↔ edge node).
    pub fn ethernet_1gbps() -> Self {
        LinkProfile::new("ethernet-1gbps", 1000.0, 1.0, 0.1)
    }

    /// Public Internet across two ISPs' access networks: ~50 Mbps,
    /// 25 ms one-way, heavy jitter.
    pub fn wan_public_internet() -> Self {
        LinkProfile::new("wan-public-internet", 50.0, 25.0, 1.0)
    }

    /// Samples the delay (ms) of transferring `bytes` over this link with
    /// the link to itself (a single flow).
    pub fn sample_transfer_ms(&self, bytes: u64, rng: &mut StdRng) -> f64 {
        self.sample_shared_transfer_ms(bytes, 1, rng)
    }

    /// Samples the delay (ms) of one of `flows` *concurrent* transfers of
    /// `bytes` sharing this link's bandwidth fairly.
    ///
    /// This is the mechanism behind the paper's Fig. 1: in a two-tier
    /// architecture every worker's model crosses the WAN simultaneously
    /// (`flows = N`), while a three-tier one only sends `flows = L < N`
    /// edge aggregates — so the WAN serialization cost scales down by the
    /// fan-in of the edge tier.
    ///
    /// # Panics
    ///
    /// Panics if `flows == 0`.
    pub fn sample_shared_transfer_ms(&self, bytes: u64, flows: usize, rng: &mut StdRng) -> f64 {
        assert!(flows > 0, "at least one flow required");
        let latency = self.latency_ms * rng.gen_range(1.0..=1.0 + self.jitter.max(f64::EPSILON));
        let serialization = (bytes as f64 * 8.0 * flows as f64) / (self.bandwidth_mbps * 1000.0); // ms
        latency + serialization
    }

    /// A composite link: traverse `self` then `next` (e.g. WiFi → WAN for
    /// a two-tier worker-to-cloud path). Bandwidth is the bottleneck;
    /// latency adds; jitter takes the max.
    pub fn chain(&self, next: &LinkProfile) -> LinkProfile {
        LinkProfile {
            name: format!("{}+{}", self.name, next.name),
            bandwidth_mbps: self.bandwidth_mbps.min(next.bandwidth_mbps),
            latency_ms: self.latency_ms + next.latency_ms,
            jitter: self.jitter.max(next.jitter),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn serialization_time_scales_with_bytes() {
        let link = LinkProfile::new("test", 100.0, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let small = link.sample_transfer_ms(1_000, &mut rng);
        let big = link.sample_transfer_ms(10_000_000, &mut rng);
        // 10 MB at 100 Mbps = 800 ms of serialization alone.
        assert!(big > small + 700.0, "big transfer {big} vs small {small}");
    }

    #[test]
    fn wan_is_slower_than_lan_for_model_payloads() {
        let mut rng = StdRng::seed_from_u64(3);
        let payload = 220_000; // a ~55k-parameter f32 model
        let wifi: f64 = (0..200)
            .map(|_| LinkProfile::wifi_5ghz().sample_transfer_ms(payload, &mut rng))
            .sum::<f64>()
            / 200.0;
        let wan: f64 = (0..200)
            .map(|_| LinkProfile::wan_public_internet().sample_transfer_ms(payload, &mut rng))
            .sum::<f64>()
            / 200.0;
        assert!(
            wan > 3.0 * wifi,
            "WAN ({wan} ms) must dominate WiFi ({wifi} ms)"
        );
    }

    #[test]
    fn chain_compounds_latency_and_bottlenecks_bandwidth() {
        let c = LinkProfile::wifi_5ghz().chain(&LinkProfile::wan_public_internet());
        assert_eq!(c.bandwidth_mbps, 50.0);
        assert_eq!(c.latency_ms, 28.0);
        assert_eq!(c.jitter, 1.0);
        assert!(c.name.contains("wifi") && c.name.contains("wan"));
    }

    #[test]
    fn jitter_zero_is_deterministic_latency() {
        let link = LinkProfile::new("det", 1000.0, 5.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let a = link.sample_transfer_ms(0, &mut rng);
        let b = link.sample_transfer_ms(0, &mut rng);
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        let _ = LinkProfile::new("bad", 0.0, 1.0, 0.0);
    }
}
