//! Wire-size accounting for federated payloads.
//!
//! Serializes model/momentum vectors the way a real transport would (f32
//! little-endian frames with a small header) so link delays are computed
//! from honest byte counts rather than guesses.

use bytes::{BufMut, Bytes, BytesMut};

/// Header bytes per framed vector: message tag (u32) + element count (u64).
pub const FRAME_HEADER_BYTES: usize = 12;

/// Serializes one `f32` vector into a length-prefixed wire frame.
///
/// # Example
///
/// ```
/// use hieradmo_netsim::payload::{encode_vector, FRAME_HEADER_BYTES};
///
/// let frame = encode_vector(7, &[1.0, 2.0, 3.0]);
/// assert_eq!(frame.len(), FRAME_HEADER_BYTES + 12);
/// ```
pub fn encode_vector(tag: u32, values: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(FRAME_HEADER_BYTES + values.len() * 4);
    buf.put_u32_le(tag);
    buf.put_u64_le(values.len() as u64);
    for &v in values {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Wire size in bytes of a federated upload/download consisting of
/// `num_vectors` framed vectors of `dim` parameters each.
///
/// Algorithm payloads (per Algorithm 1 line 9 and the baselines):
///
/// | Algorithm        | Worker→agg vectors | Agg→worker vectors |
/// |------------------|--------------------|--------------------|
/// | FedAvg/HierFAVG  | 1 (`x`)            | 1 (`x`)            |
/// | FedNAG/FedADC    | 2 (`x`, momentum)  | 2                  |
/// | HierAdMo         | 4 (`y`, `x`, `Σ∇F`, `Σy`) | 2 (`y_{ℓ−}`, `x_{ℓ+}`) |
pub fn payload_bytes(dim: usize, num_vectors: usize) -> u64 {
    (num_vectors * (FRAME_HEADER_BYTES + dim * 4)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_layout_is_exact() {
        let frame = encode_vector(0xABCD, &[1.5, -2.0]);
        assert_eq!(frame.len(), 12 + 8);
        assert_eq!(&frame[0..4], &0xABCDu32.to_le_bytes());
        assert_eq!(&frame[4..12], &2u64.to_le_bytes());
        assert_eq!(&frame[12..16], &1.5f32.to_le_bytes());
        assert_eq!(&frame[16..20], &(-2.0f32).to_le_bytes());
    }

    #[test]
    fn payload_bytes_matches_encoded_size() {
        let dim = 1000;
        let frame = encode_vector(1, &vec![0.0f32; dim]);
        assert_eq!(payload_bytes(dim, 1), frame.len() as u64);
        assert_eq!(payload_bytes(dim, 4), 4 * frame.len() as u64);
    }

    #[test]
    fn hieradmo_uploads_more_than_fedavg() {
        // The richer HierAdMo payload must cost more bytes — the netsim
        // timeline charges it honestly.
        assert!(payload_bytes(50_000, 4) > payload_bytes(50_000, 1));
    }
}
