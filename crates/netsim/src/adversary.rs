//! Deterministic adversary injection: what can go *wrong on purpose*.
//!
//! The fault layer ([`crate::fault`]) models a benign world that merely
//! breaks — crashes, lossy links, stragglers. A real multi-tier fleet must
//! also survive *malicious* participants: workers that upload adversarially
//! crafted models or momenta. An [`AdversaryPlan`] declares which workers
//! are Byzantine and which [`AttackModel`] each runs; an
//! [`AdversarySampler`] supplies the attack's randomness (only the
//! Gaussian-noise attack draws any).
//!
//! HierAdMo is doubly exposed: edges aggregate worker *momenta* as well as
//! models (Algorithm 1, lines 11–13), and the adaptive γℓ factor (Eq. 6–7)
//! feeds on the aggregated momentum direction — so a poisoned momentum
//! upload is re-amplified every edge round. [`AttackModel::MomentumPoison`]
//! targets exactly that surface while leaving the model upload honest.
//!
//! # Determinism discipline
//!
//! Adversary draws follow the same per-actor decorrelation rule as
//! [`crate::DelaySampler`] and [`crate::FaultSampler`]: every Byzantine
//! worker owns a private stream derived from the master seed via
//! [`crate::stream_seed`], salted with [`ADVERSARY_SEED_SALT`] so adversary
//! streams never collide with the delay or fault streams that use the same
//! stream indices. A worker's attack sequence depends only on its own draw
//! count — never on event interleaving — so a given
//! `(AdversaryPlan, seed)` replays bitwise identically, and the empty plan
//! draws nothing at all.
//!
//! Unlike fault streams (derived from the *network* seed), adversary
//! streams are derived from the *training* seed: the adversary corrupts the
//! training trajectory itself, so the same poisoned trajectory must replay
//! under any network timing draw.

use hieradmo_tensor::Vector;
use hieradmo_topology::{TierPath, TierTree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::sampler::stream_seed;

/// Salt XOR-ed into the master seed before deriving adversary streams, so
/// adversary stream `i` is decorrelated from the delay stream and the
/// fault stream of the same index.
pub const ADVERSARY_SEED_SALT: u64 = 0xbada_c702_5bad_5eed;

/// What a Byzantine worker does to its upload.
///
/// Every attack corrupts the worker's *upload* (the state the edge
/// aggregates); the worker's local training is honest up to that point, so
/// attacks compose cleanly with crashes, link faults and stragglers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackModel {
    /// Negate and rescale the entire upload (model, momentum and the
    /// accumulators behind them): the classic sign-flipping attack that
    /// drags a plain mean in the exact wrong direction.
    SignFlip {
        /// Magnitude multiplier applied after negation; `1.0` is a pure
        /// sign flip. Must be positive and finite.
        scale: f32,
    },
    /// Scale the entire upload by a large factor without changing its
    /// direction — a magnitude attack that dominates a data-weighted mean
    /// but survives direction-based diagnostics.
    GradScale {
        /// Multiplier on every uploaded vector. Must be positive and
        /// finite.
        factor: f32,
    },
    /// Replace the informative part of the upload with Gaussian noise:
    /// independent zero-mean noise at a calibrated norm is *added* to the
    /// uploaded model and momentum. The only attack that consumes
    /// adversary-stream entropy (exactly `2 · dim` draws per upload).
    GaussianNoise {
        /// Euclidean norm of each injected noise vector. Must be positive
        /// and finite.
        norm: f32,
    },
    /// Negate and rescale only the momentum upload (y and the momentum
    /// accumulators), leaving the model upload honest — the
    /// HierAdMo-specific vector: the poisoned momentum steers the edge's
    /// aggregated momentum `y⁻`, which is redistributed to every sibling
    /// worker *and* feeds the adaptive γℓ cosine (Eq. 6), while the honest
    /// model keeps simple model-space anomaly checks blind.
    MomentumPoison {
        /// Magnitude multiplier applied after negating the momentum
        /// vectors. Must be positive and finite.
        scale: f32,
    },
}

impl AttackModel {
    /// A short human-readable label, used in exports and report tables.
    pub fn label(&self) -> String {
        match *self {
            AttackModel::SignFlip { scale } => format!("sign_flip(x{scale})"),
            AttackModel::GradScale { factor } => format!("grad_scale(x{factor})"),
            AttackModel::GaussianNoise { norm } => format!("gauss_noise(|{norm}|)"),
            AttackModel::MomentumPoison { scale } => format!("momentum_poison(x{scale})"),
        }
    }

    /// Validates the attack's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        let pos = |name: &str, v: f32| -> Result<(), String> {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
            Ok(())
        };
        match *self {
            AttackModel::SignFlip { scale } => pos("sign_flip scale", scale),
            AttackModel::GradScale { factor } => pos("grad_scale factor", factor),
            AttackModel::GaussianNoise { norm } => pos("gauss_noise norm", norm),
            AttackModel::MomentumPoison { scale } => pos("momentum_poison scale", scale),
        }
    }
}

/// One Byzantine worker: a flat worker index and the attack it runs on
/// every upload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ByzantineWorker {
    /// Flat worker index (the same indexing as
    /// [`crate::fault::PermanentCrash::worker`]).
    pub worker: usize,
    /// The attack this worker runs.
    pub attack: AttackModel,
}

/// A declarative description of which workers are Byzantine.
///
/// The empty plan ([`AdversaryPlan::none`], also `Default`) corrupts
/// nothing and draws nothing: a run under the empty plan is bitwise
/// identical to one without adversary injection at all (the equivalence
/// gate in `tests/adversary.rs`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdversaryPlan {
    /// The Byzantine workers. Indices must be unique.
    pub byzantine: Vec<ByzantineWorker>,
}

impl AdversaryPlan {
    /// The empty plan: no adversaries, no draws.
    pub fn none() -> Self {
        AdversaryPlan::default()
    }

    /// Marks every worker in `workers` Byzantine with the same `attack`.
    pub fn uniform(workers: impl IntoIterator<Item = usize>, attack: AttackModel) -> Self {
        AdversaryPlan {
            byzantine: workers
                .into_iter()
                .map(|worker| ByzantineWorker { worker, attack })
                .collect(),
        }
    }

    /// Marks every worker addressed by a [`TierPath`] Byzantine with the
    /// same `attack` — the N-tier spelling of [`AdversaryPlan::uniform`].
    /// Each path must be a full worker address (one component per tier
    /// level) in `tree`; the plan stores the equivalent flat indices, so
    /// the run itself is bitwise identical to one built from
    /// [`AdversaryPlan::uniform`] on the resolved indices.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first path that is not a valid worker
    /// address in `tree`.
    pub fn uniform_at_paths<'a>(
        tree: &TierTree,
        paths: impl IntoIterator<Item = &'a TierPath>,
        attack: AttackModel,
    ) -> Result<Self, String> {
        let workers = paths
            .into_iter()
            .map(|p| p.flat_worker(tree))
            .collect::<Result<Vec<usize>, String>>()?;
        Ok(AdversaryPlan::uniform(workers, attack))
    }

    /// Returns `true` when the plan marks no workers Byzantine.
    pub fn is_empty(&self) -> bool {
        self.byzantine.is_empty()
    }

    /// The attack assigned to flat worker `worker`, if any.
    pub fn attack_for(&self, worker: usize) -> Option<AttackModel> {
        self.byzantine
            .iter()
            .find(|b| b.worker == worker)
            .map(|b| b.attack)
    }

    /// Validates every attack's parameters and rejects duplicate worker
    /// indices (one worker cannot run two attacks).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending entry.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        for b in &self.byzantine {
            b.attack.validate()?;
            if !seen.insert(b.worker) {
                return Err(format!(
                    "worker {} appears twice in the adversary plan",
                    b.worker
                ));
            }
        }
        Ok(())
    }
}

/// A per-actor seeded source of attack randomness (the adversary-side
/// analogue of [`crate::FaultSampler`]).
///
/// Only [`AttackModel::GaussianNoise`] consumes entropy; the deterministic
/// attacks never touch the stream, so an inert sampler stays untouched and
/// resume-from-checkpoint can replay the stream by draw count alone.
///
/// # Example
///
/// ```
/// use hieradmo_netsim::adversary::AdversarySampler;
///
/// let mut a = AdversarySampler::from_stream(7, 0);
/// let mut b = AdversarySampler::from_stream(7, 0);
/// assert_eq!(a.gaussian(4, 1.5), b.gaussian(4, 1.5), "same stream, same noise");
/// ```
#[derive(Debug, Clone)]
pub struct AdversarySampler {
    rng: StdRng,
}

impl AdversarySampler {
    /// A sampler for adversary stream `stream` of `master`, decorrelated
    /// from the delay and fault streams of the same index (see
    /// [`ADVERSARY_SEED_SALT`]).
    pub fn from_stream(master: u64, stream: u64) -> Self {
        AdversarySampler {
            rng: StdRng::seed_from_u64(stream_seed(master ^ ADVERSARY_SEED_SALT, stream)),
        }
    }

    /// One noise vector: `dim` standard-normal draws rescaled to Euclidean
    /// norm `norm`. Always consumes exactly `dim` draws, so replaying the
    /// stream is a pure function of the draw count.
    pub fn gaussian(&mut self, dim: usize, norm: f32) -> Vector {
        let std_normal = Normal::new(0.0f32, 1.0).expect("unit variance is valid");
        let mut raw: Vec<f32> = (0..dim).map(|_| std_normal.sample(&mut self.rng)).collect();
        let mag = raw
            .iter()
            .map(|x| f64::from(*x) * f64::from(*x))
            .sum::<f64>()
            .sqrt();
        if mag > 0.0 {
            let k = (f64::from(norm) / mag) as f32;
            for x in &mut raw {
                *x *= k;
            }
        }
        Vector::from(raw)
    }

    /// Advances the stream past one `gaussian(dim, _)` draw without
    /// materialising the vector — the replay path for resuming a
    /// checkpointed run mid-plan.
    pub fn skip_gaussian(&mut self, dim: usize) {
        let std_normal = Normal::new(0.0f32, 1.0).expect("unit variance is valid");
        for _ in 0..dim {
            let _: f32 = std_normal.sample(&mut self.rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FAULT_SEED_SALT;

    #[test]
    fn tier_path_plan_resolves_to_flat_indices() {
        // Depth 4: 2 regions x 2 edges x 3 workers.
        let tree = TierTree::new(vec![
            hieradmo_topology::TierSpec::new(2, 2),
            hieradmo_topology::TierSpec::new(2, 2),
            hieradmo_topology::TierSpec::new(3, 5),
        ])
        .unwrap();
        let attack = AttackModel::SignFlip { scale: 2.0 };
        let paths = [TierPath(vec![0, 0, 0]), TierPath(vec![1, 0, 2])];
        let plan = AdversaryPlan::uniform_at_paths(&tree, &paths, attack).unwrap();
        // Path 1/0/2: region 1 starts at flat worker 6, edge 0, worker 2.
        assert_eq!(plan, AdversaryPlan::uniform([0, 8], attack));
        plan.validate().unwrap();

        // A node address (too short) is not a worker address.
        let err =
            AdversaryPlan::uniform_at_paths(&tree, &[TierPath(vec![0, 1])], attack).unwrap_err();
        assert!(err.contains("worker"), "{err}");
        // Out-of-range components are rejected too.
        assert!(
            AdversaryPlan::uniform_at_paths(&tree, &[TierPath(vec![0, 0, 3])], attack).is_err()
        );
    }

    fn full_plan() -> AdversaryPlan {
        AdversaryPlan {
            byzantine: vec![
                ByzantineWorker {
                    worker: 0,
                    attack: AttackModel::SignFlip { scale: 2.0 },
                },
                ByzantineWorker {
                    worker: 2,
                    attack: AttackModel::GradScale { factor: 50.0 },
                },
                ByzantineWorker {
                    worker: 3,
                    attack: AttackModel::GaussianNoise { norm: 10.0 },
                },
                ByzantineWorker {
                    worker: 5,
                    attack: AttackModel::MomentumPoison { scale: 3.0 },
                },
            ],
        }
    }

    #[test]
    fn empty_plan_is_empty_and_valid() {
        assert!(AdversaryPlan::none().is_empty());
        assert!(AdversaryPlan::default().validate().is_ok());
        assert!(!full_plan().is_empty());
        assert!(full_plan().validate().is_ok());
    }

    #[test]
    fn attack_for_resolves_by_flat_index() {
        let plan = full_plan();
        assert_eq!(
            plan.attack_for(0),
            Some(AttackModel::SignFlip { scale: 2.0 })
        );
        assert_eq!(plan.attack_for(1), None);
        assert_eq!(
            plan.attack_for(5),
            Some(AttackModel::MomentumPoison { scale: 3.0 })
        );
    }

    #[test]
    fn uniform_builder_marks_all_listed_workers() {
        let plan = AdversaryPlan::uniform([1, 4], AttackModel::SignFlip { scale: 1.0 });
        assert_eq!(plan.byzantine.len(), 2);
        assert!(plan.attack_for(4).is_some());
        assert!(plan.attack_for(0).is_none());
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        for attack in [
            AttackModel::SignFlip { scale: 0.0 },
            AttackModel::SignFlip { scale: f32::NAN },
            AttackModel::GradScale { factor: -1.0 },
            AttackModel::GradScale {
                factor: f32::INFINITY,
            },
            AttackModel::GaussianNoise { norm: 0.0 },
            AttackModel::MomentumPoison { scale: -2.0 },
        ] {
            let plan = AdversaryPlan::uniform([0], attack);
            assert!(plan.validate().is_err(), "{attack:?} should be rejected");
        }

        let mut plan = full_plan();
        plan.byzantine.push(ByzantineWorker {
            worker: 2,
            attack: AttackModel::SignFlip { scale: 1.0 },
        });
        assert!(plan.validate().is_err(), "duplicate worker index");
    }

    #[test]
    fn same_stream_replays_bitwise() {
        let mut a = AdversarySampler::from_stream(42, 3);
        let mut b = AdversarySampler::from_stream(42, 3);
        for _ in 0..16 {
            assert_eq!(a.gaussian(7, 2.5), b.gaussian(7, 2.5));
        }
    }

    #[test]
    fn skip_gaussian_advances_exactly_one_draw() {
        let mut a = AdversarySampler::from_stream(11, 0);
        let mut b = AdversarySampler::from_stream(11, 0);
        let _ = a.gaussian(9, 1.0);
        b.skip_gaussian(9);
        assert_eq!(
            a.gaussian(9, 1.0),
            b.gaussian(9, 1.0),
            "skip must consume the same entropy as a materialised draw"
        );
    }

    #[test]
    fn adversary_streams_decorrelate() {
        let seq = |stream: u64| -> Vec<f32> {
            let mut s = AdversarySampler::from_stream(9, stream);
            s.gaussian(16, 1.0).into_inner()
        };
        assert_ne!(seq(0), seq(1), "neighbouring adversary streams must differ");
        assert_ne!(
            stream_seed(9 ^ ADVERSARY_SEED_SALT, 0),
            stream_seed(9, 0),
            "adversary and delay streams of the same index must not collide"
        );
        assert_ne!(
            stream_seed(9 ^ ADVERSARY_SEED_SALT, 0),
            stream_seed(9 ^ FAULT_SEED_SALT, 0),
            "adversary and fault streams of the same index must not collide"
        );
    }

    #[test]
    fn gaussian_hits_the_calibrated_norm() {
        let mut s = AdversarySampler::from_stream(5, 0);
        let v = s.gaussian(64, 12.5);
        assert_eq!(v.len(), 64);
        assert!((v.norm() - 12.5).abs() < 1e-3, "norm = {}", v.norm());
        // Degenerate dimension: no draws, no panic.
        assert_eq!(s.gaussian(0, 1.0).len(), 0);
    }

    #[test]
    fn plan_serializes_round_trip() {
        let plan = full_plan();
        let json = serde_json::to_string(&plan).unwrap();
        let back: AdversaryPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
