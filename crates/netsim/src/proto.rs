//! The federated wire protocol: typed messages for every transfer in
//! Algorithm 1, with checksummed binary encoding.
//!
//! A production client–edge–cloud deployment needs an actual message
//! format; this module defines one and the simulator charges links with
//! its *real* encoded sizes. Layout (little-endian):
//!
//! ```text
//! [magic u32][version u8][kind u8][sender u32][round u64]
//! [n_vectors u8] { [len u64][f32 × len] }*  [checksum u32]
//! ```
//!
//! The checksum is Fletcher-32 over everything before it — enough to
//! catch the truncation/corruption failures a lossy transport produces,
//! without pulling in a CRC dependency.
//!
//! Every message carries its aggregation `round`, so a receiver can
//! discard redundant re-deliveries by comparing against the round it has
//! already applied. This is what lets the fault layer (DESIGN.md §11)
//! treat duplicated frames as counting-only events: a duplicate is
//! observable in the tallies but can never change aggregation state.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use hieradmo_tensor::Vector;

const MAGIC: u32 = 0x4841_444D; // "HADM"
const VERSION: u8 = 1;

/// A federated protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → edge upload at an edge aggregation (Algorithm 1 line 9):
    /// momentum `y`, model `x`, and the two interval accumulators.
    WorkerUpload {
        /// Flat worker index.
        sender: u32,
        /// Edge-aggregation round `k`.
        round: u64,
        /// Momentum parameter `y_{i,ℓ}`.
        y: Vector,
        /// Model `x_{i,ℓ}`.
        x: Vector,
        /// `Σ ∇F_{i,ℓ}` over the interval.
        grad_sum: Vector,
        /// `Σ y_{i,ℓ}` over the interval.
        y_sum: Vector,
    },
    /// Edge → worker broadcast (lines 14–15): `y_{ℓ−}` and `x_{ℓ+}`.
    EdgeBroadcast {
        /// Edge index.
        sender: u32,
        /// Edge-aggregation round `k`.
        round: u64,
        /// Aggregated worker momentum `y_{ℓ−}`.
        y_minus: Vector,
        /// Edge model `x_{ℓ+}`.
        x_plus: Vector,
    },
    /// Edge → cloud upload at a cloud aggregation (lines 18–19 inputs).
    EdgeUpload {
        /// Edge index.
        sender: u32,
        /// Cloud-aggregation round `p`.
        round: u64,
        /// `y_{ℓ−}`.
        y_minus: Vector,
        /// `x_{ℓ+}`.
        x_plus: Vector,
    },
    /// Cloud → edge/worker broadcast (lines 20–23).
    CloudBroadcast {
        /// Cloud-aggregation round `p`.
        round: u64,
        /// Cloud-aggregated momentum `y`.
        y: Vector,
        /// Cloud model `x`.
        x: Vector,
    },
    /// Model-only sync for momentum-free algorithms (FedAvg, HierFAVG).
    ModelOnly {
        /// Sender id (worker or aggregator).
        sender: u32,
        /// Aggregation round.
        round: u64,
        /// Model parameters.
        x: Vector,
    },
}

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer shorter than the fixed header or a declared vector.
    Truncated,
    /// Wrong magic number (not a HierAdMo frame).
    BadMagic,
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown message kind tag.
    BadKind(u8),
    /// Checksum mismatch (corruption in transit).
    Corrupt,
    /// Message kind declared the wrong number of vectors.
    WrongVectorCount {
        /// Expected count for the kind.
        expected: u8,
        /// Count found on the wire.
        found: u8,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::BadMagic => write!(f, "bad magic number"),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::BadKind(k) => write!(f, "unknown message kind {k}"),
            DecodeError::Corrupt => write!(f, "checksum mismatch"),
            DecodeError::WrongVectorCount { expected, found } => {
                write!(f, "expected {expected} vectors, found {found}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::WorkerUpload { .. } => 1,
            Message::EdgeBroadcast { .. } => 2,
            Message::EdgeUpload { .. } => 3,
            Message::CloudBroadcast { .. } => 4,
            Message::ModelOnly { .. } => 5,
        }
    }

    fn sender(&self) -> u32 {
        match self {
            Message::WorkerUpload { sender, .. }
            | Message::EdgeBroadcast { sender, .. }
            | Message::EdgeUpload { sender, .. }
            | Message::ModelOnly { sender, .. } => *sender,
            Message::CloudBroadcast { .. } => u32::MAX,
        }
    }

    fn round(&self) -> u64 {
        match self {
            Message::WorkerUpload { round, .. }
            | Message::EdgeBroadcast { round, .. }
            | Message::EdgeUpload { round, .. }
            | Message::CloudBroadcast { round, .. }
            | Message::ModelOnly { round, .. } => *round,
        }
    }

    fn vectors(&self) -> Vec<&Vector> {
        match self {
            Message::WorkerUpload {
                y,
                x,
                grad_sum,
                y_sum,
                ..
            } => vec![y, x, grad_sum, y_sum],
            Message::EdgeBroadcast {
                y_minus, x_plus, ..
            }
            | Message::EdgeUpload {
                y_minus, x_plus, ..
            } => vec![y_minus, x_plus],
            Message::CloudBroadcast { y, x, .. } => vec![y, x],
            Message::ModelOnly { x, .. } => vec![x],
        }
    }

    /// Encodes the message into a checksummed wire frame.
    pub fn encode(&self) -> Bytes {
        let vectors = self.vectors();
        let body: usize = vectors.iter().map(|v| 8 + v.len() * 4).sum();
        let mut buf = BytesMut::with_capacity(4 + 1 + 1 + 4 + 8 + 1 + body + 4);
        buf.put_u32_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(self.kind());
        buf.put_u32_le(self.sender());
        buf.put_u64_le(self.round());
        buf.put_u8(vectors.len() as u8);
        for v in vectors {
            buf.put_u64_le(v.len() as u64);
            for &f in v.iter() {
                buf.put_f32_le(f);
            }
        }
        let checksum = fletcher32(&buf);
        buf.put_u32_le(checksum);
        buf.freeze()
    }

    /// Wire size in bytes (without encoding — for payload accounting).
    pub fn wire_bytes(&self) -> u64 {
        let body: usize = self.vectors().iter().map(|v| 8 + v.len() * 4).sum();
        (4 + 1 + 1 + 4 + 8 + 1 + body + 4) as u64
    }

    /// Decodes a wire frame.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for truncation, corruption, unknown
    /// versions/kinds, or kind/vector-count mismatches.
    pub fn decode(frame: &[u8]) -> Result<Message, DecodeError> {
        if frame.len() < 4 + 1 + 1 + 4 + 8 + 1 + 4 {
            return Err(DecodeError::Truncated);
        }
        let (payload, checksum_bytes) = frame.split_at(frame.len() - 4);
        let declared = u32::from_le_bytes(
            checksum_bytes
                .try_into()
                .expect("split_at guarantees 4 bytes"),
        );
        if fletcher32(payload) != declared {
            return Err(DecodeError::Corrupt);
        }

        let mut buf = payload;
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = buf.get_u8();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let kind = buf.get_u8();
        let sender = buf.get_u32_le();
        let round = buf.get_u64_le();
        let n_vectors = buf.get_u8();

        let expected = match kind {
            1 => 4,
            2..=4 => 2,
            5 => 1,
            other => return Err(DecodeError::BadKind(other)),
        };
        if n_vectors != expected {
            return Err(DecodeError::WrongVectorCount {
                expected,
                found: n_vectors,
            });
        }

        let mut vectors = Vec::with_capacity(n_vectors as usize);
        for _ in 0..n_vectors {
            if buf.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            let len = buf.get_u64_le() as usize;
            if buf.remaining() < len * 4 {
                return Err(DecodeError::Truncated);
            }
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(buf.get_f32_le());
            }
            vectors.push(Vector::from(v));
        }

        let mut it = vectors.into_iter();
        let mut next = || it.next().expect("count validated above");
        Ok(match kind {
            1 => Message::WorkerUpload {
                sender,
                round,
                y: next(),
                x: next(),
                grad_sum: next(),
                y_sum: next(),
            },
            2 => Message::EdgeBroadcast {
                sender,
                round,
                y_minus: next(),
                x_plus: next(),
            },
            3 => Message::EdgeUpload {
                sender,
                round,
                y_minus: next(),
                x_plus: next(),
            },
            4 => Message::CloudBroadcast {
                round,
                y: next(),
                x: next(),
            },
            5 => Message::ModelOnly {
                sender,
                round,
                x: next(),
            },
            _ => unreachable!("kind validated above"),
        })
    }
}

/// Fletcher-32 checksum over a byte slice.
fn fletcher32(data: &[u8]) -> u32 {
    let mut sum1: u32 = 0;
    let mut sum2: u32 = 0;
    // Process as 16-bit words, padding the tail with zero.
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        let word = u16::from_le_bytes([c[0], c[1]]) as u32;
        sum1 = (sum1 + word) % 65535;
        sum2 = (sum2 + sum1) % 65535;
    }
    if let [last] = chunks.remainder() {
        sum1 = (sum1 + *last as u32) % 65535;
        sum2 = (sum2 + sum1) % 65535;
    }
    (sum2 << 16) | sum1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[f32]) -> Vector {
        Vector::from(vals)
    }

    fn samples() -> Vec<Message> {
        vec![
            Message::WorkerUpload {
                sender: 3,
                round: 17,
                y: v(&[1.0, -2.0]),
                x: v(&[0.5, 0.25]),
                grad_sum: v(&[10.0, 20.0]),
                y_sum: v(&[5.0, 5.0]),
            },
            Message::EdgeBroadcast {
                sender: 1,
                round: 17,
                y_minus: v(&[0.1]),
                x_plus: v(&[0.2]),
            },
            Message::EdgeUpload {
                sender: 0,
                round: 8,
                y_minus: v(&[]),
                x_plus: v(&[9.0]),
            },
            Message::CloudBroadcast {
                round: 8,
                y: v(&[1.0, 2.0, 3.0]),
                x: v(&[4.0, 5.0, 6.0]),
            },
            Message::ModelOnly {
                sender: 2,
                round: 99,
                x: v(&[7.5; 5]),
            },
        ]
    }

    #[test]
    fn every_kind_round_trips() {
        for msg in samples() {
            let frame = msg.encode();
            assert_eq!(frame.len() as u64, msg.wire_bytes());
            let back = Message::decode(&frame).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let msg = &samples()[0];
        let frame = msg.encode();
        // Flip one byte in the body.
        for pos in [6usize, 20, frame.len() / 2] {
            let mut bad = frame.to_vec();
            bad[pos] ^= 0x40;
            assert_eq!(
                Message::decode(&bad),
                Err(DecodeError::Corrupt),
                "corruption at {pos} not detected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let frame = samples()[0].encode();
        for cut in [0usize, 5, 18, frame.len() - 5] {
            let err = Message::decode(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, DecodeError::Truncated | DecodeError::Corrupt),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut frame = samples()[4].encode().to_vec();
        frame[0] ^= 0xFF;
        // Recompute checksum so only the magic is wrong.
        let len = frame.len();
        let sum = fletcher32(&frame[..len - 4]);
        frame[len - 4..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(Message::decode(&frame), Err(DecodeError::BadMagic));

        let mut frame = samples()[4].encode().to_vec();
        frame[4] = 9; // version
        let sum = fletcher32(&frame[..len - 4]);
        frame[len - 4..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(Message::decode(&frame), Err(DecodeError::BadVersion(9)));
    }

    #[test]
    fn hieradmo_upload_is_heavier_than_model_only() {
        // Protocol-level confirmation of the payload table used by the
        // Fig. 2(h)/(l) accounting.
        let dim = 1000;
        let worker = Message::WorkerUpload {
            sender: 0,
            round: 1,
            y: Vector::zeros(dim),
            x: Vector::zeros(dim),
            grad_sum: Vector::zeros(dim),
            y_sum: Vector::zeros(dim),
        };
        let plain = Message::ModelOnly {
            sender: 0,
            round: 1,
            x: Vector::zeros(dim),
        };
        assert!(worker.wire_bytes() > 3 * plain.wire_bytes());
    }

    #[test]
    fn fletcher32_known_vector() {
        // "abcde" → 0xF04FC729 (standard Fletcher-32 test vector).
        assert_eq!(fletcher32(b"abcde"), 0xF04F_C729);
        assert_eq!(fletcher32(b""), 0);
        assert_ne!(fletcher32(b"abcdf"), fletcher32(b"abcde"));
    }
}
