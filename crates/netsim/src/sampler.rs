//! On-demand delay sampling.
//!
//! [`crate::simulate_timeline`] replays a *finished* schedule, drawing every
//! delay from one sequential RNG. An event-driven co-simulation (the
//! `hieradmo-simrt` crate) instead needs delays *as events happen*, from
//! many actors at once, without the draw order depending on event
//! interleaving. [`DelaySampler`] is the shared primitive for both: a thin
//! seeded wrapper over the device/link sampling methods. The replay path
//! uses a single sampler (preserving its historical draw order bit-for-bit
//! — see the `sampling_determinism` proptests); the event-driven path gives
//! every actor its own decorrelated stream via [`stream_seed`], so each
//! actor's delay sequence depends only on its seed and its own draw count,
//! never on global event ordering.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::device::DeviceProfile;
use crate::link::LinkProfile;

/// Derives a decorrelated child seed for stream `stream` of `master`.
///
/// SplitMix64 finalizer over `master + stream`: consecutive stream indices
/// land in unrelated parts of the seed space, so per-actor RNG streams do
/// not overlap in practice. Deterministic and stable across platforms.
pub fn stream_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded source of on-demand compute/transfer delay draws.
///
/// # Example
///
/// ```
/// use hieradmo_netsim::{DelaySampler, DeviceProfile, LinkProfile};
///
/// let mut s = DelaySampler::new(7);
/// let d = DeviceProfile::paper_edge();
/// let l = LinkProfile::wifi_5ghz();
/// assert!(s.compute_ms(&d) > 0.0);
/// assert!(s.shared_transfer_ms(&l, 100_000, 4) > 0.0);
/// // Same seed ⇒ same sequence.
/// let (mut a, mut b) = (DelaySampler::new(1), DelaySampler::new(1));
/// assert_eq!(a.compute_ms(&d), b.compute_ms(&d));
/// ```
#[derive(Debug, Clone)]
pub struct DelaySampler {
    rng: StdRng,
}

impl DelaySampler {
    /// A sampler seeded directly with `seed`.
    pub fn new(seed: u64) -> Self {
        DelaySampler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A sampler for stream `stream` of `master` (see [`stream_seed`]).
    pub fn from_stream(master: u64, stream: u64) -> Self {
        DelaySampler::new(stream_seed(master, stream))
    }

    /// One computation delay (ms) with the ±5% system-noise factor —
    /// the same draw [`crate::simulate_timeline`] charges per unit of work.
    pub fn compute_ms(&mut self, device: &DeviceProfile) -> f64 {
        device.sample_noisy_ms(&mut self.rng)
    }

    /// One single-flow transfer delay (ms) of `bytes` over `link`.
    pub fn transfer_ms(&mut self, link: &LinkProfile, bytes: u64) -> f64 {
        link.sample_transfer_ms(bytes, &mut self.rng)
    }

    /// One transfer delay (ms) of `bytes` as one of `flows` concurrent
    /// flows sharing `link`.
    ///
    /// # Panics
    ///
    /// Panics if `flows == 0`.
    pub fn shared_transfer_ms(&mut self, link: &LinkProfile, bytes: u64, flows: usize) -> f64 {
        link.sample_shared_transfer_ms(bytes, flows, &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let d = DeviceProfile::paper_workers().remove(0);
        let l = LinkProfile::wan_public_internet();
        let mut a = DelaySampler::new(42);
        let mut b = DelaySampler::new(42);
        for _ in 0..32 {
            assert_eq!(a.compute_ms(&d), b.compute_ms(&d));
            assert_eq!(
                a.shared_transfer_ms(&l, 123_456, 3),
                b.shared_transfer_ms(&l, 123_456, 3)
            );
        }
    }

    #[test]
    fn distinct_streams_decorrelate() {
        let d = DeviceProfile::paper_edge();
        let mut s0 = DelaySampler::from_stream(9, 0);
        let mut s1 = DelaySampler::from_stream(9, 1);
        let seq0: Vec<f64> = (0..16).map(|_| s0.compute_ms(&d)).collect();
        let seq1: Vec<f64> = (0..16).map(|_| s1.compute_ms(&d)).collect();
        assert_ne!(seq0, seq1, "stream 0 and 1 must differ");
    }

    #[test]
    fn stream_seed_is_stable() {
        // Pinned values: changing the mixer silently would reorder every
        // event-driven simulation, so lock it down.
        assert_eq!(stream_seed(0, 0), stream_seed(0, 0));
        assert_ne!(stream_seed(0, 0), stream_seed(0, 1));
        assert_ne!(stream_seed(0, 1), stream_seed(1, 0));
    }

    #[test]
    fn draws_positive_delays() {
        let mut s = DelaySampler::new(5);
        let l = LinkProfile::ethernet_1gbps();
        assert!(s.transfer_ms(&l, 0) > 0.0, "latency floor even at 0 bytes");
        assert!(s.shared_transfer_ms(&l, 1_000_000, 8) > s.transfer_ms(&l, 0));
    }
}
