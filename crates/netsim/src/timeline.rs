//! Timeline replay: turns a training schedule plus device/link models into
//! cumulative wall-clock time per iteration, then joins it with a
//! convergence curve to answer "how long to reach accuracy X?" —
//! reproducing Fig. 2(h)/(l).

use serde::{Deserialize, Serialize};

use hieradmo_metrics::ConvergenceCurve;
use hieradmo_topology::{Hierarchy, Schedule};

use crate::device::DeviceProfile;
use crate::link::LinkProfile;
use crate::sampler::DelaySampler;

/// Which architecture's communication pattern to replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Architecture {
    /// Workers reach the cloud directly over WiFi + WAN at every
    /// aggregation.
    TwoTier,
    /// Workers reach the edge over WiFi every `τ`; edges reach the cloud
    /// over Ethernet + WAN every `τπ`.
    ThreeTier,
}

/// The emulated testbed: devices and links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkEnv {
    /// One compute profile per worker (flat order).
    pub worker_devices: Vec<DeviceProfile>,
    /// The edge node's aggregation compute profile.
    pub edge_device: DeviceProfile,
    /// The cloud's aggregation compute profile.
    pub cloud_device: DeviceProfile,
    /// Worker ↔ edge link (three-tier) — WiFi in the paper's testbed.
    pub worker_edge_link: LinkProfile,
    /// Edge ↔ cloud link (three-tier) — Ethernet then WAN.
    pub edge_cloud_link: LinkProfile,
    /// Worker ↔ cloud link (two-tier) — WiFi then WAN.
    pub worker_cloud_link: LinkProfile,
}

impl NetworkEnv {
    /// The paper's testbed with `n_workers` workers, cycling through the
    /// four physical devices (laptop + three phones).
    ///
    /// # Panics
    ///
    /// Panics if `n_workers == 0`.
    pub fn paper_testbed(n_workers: usize) -> Self {
        assert!(n_workers > 0, "need at least one worker");
        let base = DeviceProfile::paper_workers();
        let worker_devices = (0..n_workers)
            .map(|i| base[i % base.len()].clone())
            .collect();
        let wifi = LinkProfile::wifi_5ghz();
        let eth = LinkProfile::ethernet_1gbps();
        let wan = LinkProfile::wan_public_internet();
        NetworkEnv {
            worker_devices,
            edge_device: DeviceProfile::paper_edge(),
            cloud_device: DeviceProfile::paper_cloud(),
            worker_edge_link: wifi.clone(),
            edge_cloud_link: eth.chain(&wan),
            worker_cloud_link: wifi.chain(&wan),
        }
    }
}

/// What to replay: schedule, topology, architecture and payload sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// The aggregation schedule that was trained.
    pub schedule: Schedule,
    /// The worker/edge tree (two-tier uses a single-edge hierarchy).
    pub hierarchy: Hierarchy,
    /// Which communication pattern to charge.
    pub architecture: Architecture,
    /// Upload bytes per worker per aggregation (see
    /// [`crate::payload::payload_bytes`]).
    pub upload_bytes: u64,
    /// Download bytes per worker per aggregation. Set equal to
    /// `upload_bytes` via [`TraceConfig::new`]; override for asymmetric
    /// algorithms.
    pub download_bytes: u64,
    /// RNG seed for all delay sampling.
    pub seed: u64,
}

impl TraceConfig {
    /// Creates a config with symmetric upload/download payloads.
    pub fn new(
        schedule: Schedule,
        hierarchy: Hierarchy,
        architecture: Architecture,
        payload_bytes: u64,
        seed: u64,
    ) -> Self {
        TraceConfig {
            schedule,
            hierarchy,
            architecture,
            upload_bytes: payload_bytes,
            download_bytes: payload_bytes,
            seed,
        }
    }
}

/// Where the emulated time went: the quantified version of the paper's
/// Fig. 1 argument (WAN round-trips dominate two-tier training).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Worker computation (ms).
    pub compute_ms: f64,
    /// Local-network transfers: worker ↔ edge (ms).
    pub lan_ms: f64,
    /// Public-Internet transfers: (worker|edge) ↔ cloud (ms).
    pub wan_ms: f64,
    /// Edge/cloud aggregation computation (ms).
    pub aggregation_ms: f64,
}

impl TimeBreakdown {
    /// Fraction of total time spent crossing the WAN.
    pub fn wan_fraction(&self) -> f64 {
        let total = self.compute_ms + self.lan_ms + self.wan_ms + self.aggregation_ms;
        if total > 0.0 {
            self.wan_ms / total
        } else {
            0.0
        }
    }
}

/// Cumulative emulated wall-clock time, per local iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// `cumulative_ms[t-1]` = emulated time after iteration `t` completes
    /// (including any aggregation at `t`).
    cumulative_ms: Vec<f64>,
    breakdown: TimeBreakdown,
}

impl Timeline {
    /// Emulated seconds elapsed when iteration `t` (1-based) completes.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or `t` exceeds the simulated horizon.
    pub fn time_at(&self, t: usize) -> f64 {
        assert!(
            t >= 1 && t <= self.cumulative_ms.len(),
            "iteration {t} outside simulated horizon 1..={}",
            self.cumulative_ms.len()
        );
        self.cumulative_ms[t - 1] / 1000.0
    }

    /// Total emulated seconds for the whole schedule.
    pub fn total_seconds(&self) -> f64 {
        self.cumulative_ms.last().map_or(0.0, |&ms| ms / 1000.0)
    }

    /// Joins this timeline with a convergence curve: emulated seconds until
    /// the run first reached `target` accuracy, or `None` if it never did.
    pub fn time_to_accuracy(&self, curve: &ConvergenceCurve, target: f64) -> Option<f64> {
        curve
            .iterations_to_accuracy(target)
            .map(|t| self.time_at(t.min(self.cumulative_ms.len())))
    }

    /// Where the time went (compute vs LAN vs WAN vs aggregation).
    pub fn breakdown(&self) -> TimeBreakdown {
        self.breakdown
    }
}

/// Replays the schedule against the environment and returns the timeline.
///
/// Per tick, all workers compute one local iteration in parallel (the tick
/// costs the **max** over workers). At an edge aggregation each edge waits
/// for its slowest worker's upload, aggregates, and pushes the result back
/// (uploads/downloads of one edge's workers are concurrent; the tick is
/// charged the slowest). Cloud aggregations add the edge↔cloud round trip
/// (two-tier: workers pay the worker↔cloud WAN path instead, and there is
/// no separate edge hop).
///
/// # Panics
///
/// Panics if the hierarchy's worker count does not match
/// `env.worker_devices.len()`.
pub fn simulate_timeline(env: &NetworkEnv, cfg: &TraceConfig) -> Timeline {
    assert_eq!(
        env.worker_devices.len(),
        cfg.hierarchy.num_workers(),
        "one device profile per worker required"
    );
    let mut sampler = DelaySampler::new(cfg.seed);
    let n = cfg.hierarchy.num_workers();
    let mut cumulative = Vec::with_capacity(cfg.schedule.total_iterations());
    let mut now_ms = 0.0f64;
    let mut breakdown = TimeBreakdown::default();

    for tick in cfg.schedule.ticks() {
        // Parallel local compute: the tick advances by the slowest worker.
        let slowest_compute = (0..n)
            .map(|i| sampler.compute_ms(&env.worker_devices[i]))
            .fold(0.0f64, f64::max);
        now_ms += slowest_compute;
        breakdown.compute_ms += slowest_compute;

        match cfg.architecture {
            Architecture::ThreeTier => {
                if tick.edge_aggregation.is_some() {
                    // Worker → edge uploads: the workers under one edge
                    // share that edge's access link (WiFi AP); edges run in
                    // parallel, so the tick is charged the slowest edge.
                    let slowest_up = (0..cfg.hierarchy.num_edges())
                        .map(|e| {
                            let flows = cfg.hierarchy.workers_in_edge(e);
                            sampler.shared_transfer_ms(
                                &env.worker_edge_link,
                                cfg.upload_bytes,
                                flows,
                            )
                        })
                        .fold(0.0f64, f64::max);
                    now_ms += slowest_up;
                    breakdown.lan_ms += slowest_up;
                    let agg = sampler.compute_ms(&env.edge_device);
                    now_ms += agg;
                    breakdown.aggregation_ms += agg;

                    if tick.cloud_aggregation.is_some() {
                        // Edge → cloud: all L edge aggregates share the WAN
                        // (the Fig. 1 saving — L flows instead of N).
                        let l = cfg.hierarchy.num_edges();
                        let slowest_edge_up = (0..l)
                            .map(|_| {
                                sampler.shared_transfer_ms(
                                    &env.edge_cloud_link,
                                    cfg.upload_bytes,
                                    l,
                                )
                            })
                            .fold(0.0f64, f64::max);
                        now_ms += slowest_edge_up;
                        breakdown.wan_ms += slowest_edge_up;
                        let agg = sampler.compute_ms(&env.cloud_device);
                        now_ms += agg;
                        breakdown.aggregation_ms += agg;
                        let slowest_edge_down = (0..l)
                            .map(|_| {
                                sampler.shared_transfer_ms(
                                    &env.edge_cloud_link,
                                    cfg.download_bytes,
                                    l,
                                )
                            })
                            .fold(0.0f64, f64::max);
                        now_ms += slowest_edge_down;
                        breakdown.wan_ms += slowest_edge_down;
                    }

                    // Edge → worker downloads (shared per edge again).
                    let slowest_down = (0..cfg.hierarchy.num_edges())
                        .map(|e| {
                            let flows = cfg.hierarchy.workers_in_edge(e);
                            sampler.shared_transfer_ms(
                                &env.worker_edge_link,
                                cfg.download_bytes,
                                flows,
                            )
                        })
                        .fold(0.0f64, f64::max);
                    now_ms += slowest_down;
                    breakdown.lan_ms += slowest_down;
                }
            }
            Architecture::TwoTier => {
                if tick.cloud_aggregation.is_some() {
                    // All N worker models cross the shared WAN at once.
                    let slowest_up = (0..n)
                        .map(|_| {
                            sampler.shared_transfer_ms(&env.worker_cloud_link, cfg.upload_bytes, n)
                        })
                        .fold(0.0f64, f64::max);
                    now_ms += slowest_up;
                    breakdown.wan_ms += slowest_up;
                    let agg = sampler.compute_ms(&env.cloud_device);
                    now_ms += agg;
                    breakdown.aggregation_ms += agg;
                    let slowest_down = (0..n)
                        .map(|_| {
                            sampler.shared_transfer_ms(
                                &env.worker_cloud_link,
                                cfg.download_bytes,
                                n,
                            )
                        })
                        .fold(0.0f64, f64::max);
                    now_ms += slowest_down;
                    breakdown.wan_ms += slowest_down;
                }
            }
        }
        cumulative.push(now_ms);
    }

    Timeline {
        cumulative_ms: cumulative,
        breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieradmo_metrics::EvalPoint;

    fn schedule3() -> Schedule {
        Schedule::three_tier(10, 2, 100).unwrap()
    }

    fn schedule2() -> Schedule {
        Schedule::two_tier(20, 100).unwrap()
    }

    #[test]
    fn timeline_is_monotone_and_positive() {
        let h = Hierarchy::balanced(2, 2);
        let env = NetworkEnv::paper_testbed(4);
        let cfg = TraceConfig::new(schedule3(), h, Architecture::ThreeTier, 200_000, 1);
        let tl = simulate_timeline(&env, &cfg);
        let mut prev = 0.0;
        for t in 1..=100 {
            let now = tl.time_at(t);
            assert!(now > prev, "time must strictly increase at t={t}");
            prev = now;
        }
        assert!(tl.total_seconds() > 0.0);
    }

    #[test]
    fn three_tier_finishes_faster_than_two_tier_per_iteration() {
        // Same number of cloud syncs (τπ = τ₂ = 20), but the three-tier run
        // confines most round-trips to the LAN.
        let env3 = NetworkEnv::paper_testbed(4);
        let cfg3 = TraceConfig::new(
            schedule3(),
            Hierarchy::balanced(2, 2),
            Architecture::ThreeTier,
            200_000,
            5,
        );
        let cfg2 = TraceConfig::new(
            schedule2(),
            Hierarchy::two_tier(4),
            Architecture::TwoTier,
            200_000,
            5,
        );
        let t3 = simulate_timeline(&env3, &cfg3);
        let t2 = simulate_timeline(&env3, &cfg2);
        // Communication-only comparison: subtract the (identical) compute
        // floor by comparing totals — three-tier pays 10 LAN rounds + 5 WAN
        // rounds, two-tier pays 5 (WiFi+WAN) rounds; with these payloads
        // the three-tier total must not exceed the two-tier total by much,
        // and per *WAN-free* aggregation it is strictly cheaper. Here we
        // assert the paper's direction for the *same* sync frequency to the
        // cloud.
        assert!(
            t3.total_seconds() < t2.total_seconds() * 1.6,
            "three-tier {} vs two-tier {}",
            t3.total_seconds(),
            t2.total_seconds()
        );
    }

    #[test]
    fn bigger_payload_takes_longer() {
        let h = Hierarchy::balanced(2, 2);
        let env = NetworkEnv::paper_testbed(4);
        let small = TraceConfig::new(schedule3(), h.clone(), Architecture::ThreeTier, 10_000, 9);
        let large = TraceConfig::new(schedule3(), h, Architecture::ThreeTier, 10_000_000, 9);
        assert!(
            simulate_timeline(&env, &large).total_seconds()
                > simulate_timeline(&env, &small).total_seconds()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let h = Hierarchy::balanced(2, 2);
        let env = NetworkEnv::paper_testbed(4);
        let cfg = TraceConfig::new(schedule3(), h, Architecture::ThreeTier, 100_000, 42);
        let a = simulate_timeline(&env, &cfg);
        let b = simulate_timeline(&env, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn time_to_accuracy_joins_curve_and_timeline() {
        let h = Hierarchy::balanced(2, 2);
        let env = NetworkEnv::paper_testbed(4);
        let cfg = TraceConfig::new(schedule3(), h, Architecture::ThreeTier, 100_000, 3);
        let tl = simulate_timeline(&env, &cfg);
        let curve: ConvergenceCurve = [
            EvalPoint {
                iteration: 50,
                train_loss: 1.0,
                test_loss: 1.0,
                test_accuracy: 0.7,
            },
            EvalPoint {
                iteration: 100,
                train_loss: 0.5,
                test_loss: 0.5,
                test_accuracy: 0.96,
            },
        ]
        .into_iter()
        .collect();
        let t = tl.time_to_accuracy(&curve, 0.95).unwrap();
        assert!((t - tl.time_at(100)).abs() < 1e-9);
        assert_eq!(tl.time_to_accuracy(&curve, 0.99), None);
    }

    #[test]
    fn breakdown_reflects_architecture() {
        let env = NetworkEnv::paper_testbed(4);
        let three = simulate_timeline(
            &env,
            &TraceConfig::new(
                Schedule::three_tier(10, 2, 200).unwrap(),
                Hierarchy::balanced(2, 2),
                Architecture::ThreeTier,
                2_000_000,
                11,
            ),
        );
        let two = simulate_timeline(
            &env,
            &TraceConfig::new(
                Schedule::two_tier(20, 200).unwrap(),
                Hierarchy::two_tier(4),
                Architecture::TwoTier,
                2_000_000,
                11,
            ),
        );
        // Three-tier spends on the LAN; two-tier never does.
        assert!(three.breakdown().lan_ms > 0.0);
        assert_eq!(two.breakdown().lan_ms, 0.0);
        // The Fig. 1 claim, quantified: for a multi-MB payload the
        // two-tier architecture burns a larger share of its time on the
        // WAN than the three-tier one.
        assert!(
            two.breakdown().wan_fraction() > three.breakdown().wan_fraction(),
            "two-tier WAN share {} should exceed three-tier {}",
            two.breakdown().wan_fraction(),
            three.breakdown().wan_fraction()
        );
        // Accounting closes: parts sum to the total.
        for tl in [&three, &two] {
            let b = tl.breakdown();
            let parts = b.compute_ms + b.lan_ms + b.wan_ms + b.aggregation_ms;
            assert!(((parts / 1000.0) - tl.total_seconds()).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "outside simulated horizon")]
    fn time_at_out_of_range_panics() {
        let h = Hierarchy::balanced(2, 2);
        let env = NetworkEnv::paper_testbed(4);
        let cfg = TraceConfig::new(schedule3(), h, Architecture::ThreeTier, 100_000, 3);
        let tl = simulate_timeline(&env, &cfg);
        let _ = tl.time_at(101);
    }
}
