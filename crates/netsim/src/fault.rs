//! Deterministic fault injection: what can go *wrong* on the network.
//!
//! The delay models ([`crate::link`], [`crate::device`]) describe a slow but
//! perfectly reliable world. Real multi-tier deployments are not reliable:
//! workers crash and come back, links drop and duplicate messages, transfers
//! fail and must be retried, and devices stall. A [`FaultPlan`] describes
//! that unreliability declaratively; a [`FaultSampler`] turns the plan into
//! concrete fault draws.
//!
//! # Determinism discipline
//!
//! Fault draws follow the same per-actor decorrelation rule as
//! [`crate::DelaySampler`]: every actor owns a private stream derived from
//! the master `net_seed` via [`crate::stream_seed`], salted with
//! [`FAULT_SEED_SALT`] so fault streams never collide with the delay streams
//! that use the same stream indices. An actor's fault sequence therefore
//! depends only on its own draw count — never on global event interleaving —
//! and a given `(FaultPlan, net_seed)` replays bitwise identically.

use hieradmo_topology::{TierPath, TierTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::sampler::stream_seed;

/// Salt XOR-ed into the master seed before deriving fault streams, so
/// fault stream `i` is decorrelated from delay stream `i` of the same
/// master seed.
pub const FAULT_SEED_SALT: u64 = 0xfa17_5eed_0dd5_ba5e;

/// Transient worker crashes: at each draw point (one per scheduled local
/// step and one per upload) the worker crashes with probability
/// `per_step`, losing its in-progress interval (or in-flight upload) and
/// staying down for a uniform downtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashProfile {
    /// Crash probability per draw point, in `[0, 1)`. Strictly below 1 so
    /// a worker cannot crash forever.
    pub per_step: f64,
    /// Minimum downtime before recovery, in virtual milliseconds.
    pub min_downtime_ms: f64,
    /// Maximum downtime before recovery, in virtual milliseconds.
    pub max_downtime_ms: f64,
}

/// A worker that crashes at a fixed virtual time and never recovers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PermanentCrash {
    /// Flat worker index.
    pub worker: usize,
    /// Virtual time of death, in milliseconds.
    pub at_ms: f64,
}

impl PermanentCrash {
    /// The N-tier spelling: a permanent crash for the worker addressed by
    /// a full [`TierPath`] in `tree`. The plan stores the equivalent flat
    /// index, so the injected run is bitwise identical to one built with
    /// that index directly.
    ///
    /// # Errors
    ///
    /// Returns a message when `path` is not a valid worker address.
    pub fn at_path(tree: &TierTree, path: &TierPath, at_ms: f64) -> Result<Self, String> {
        Ok(PermanentCrash {
            worker: path.flat_worker(tree)?,
            at_ms,
        })
    }
}

/// Link-level message faults applied to every transfer: loss (detected by
/// an acknowledgement timeout), transient transfer failure (detected
/// faster), and duplication. Failed sends are retried with capped
/// exponential backoff; after `max_attempts` the transport escalates to a
/// reliable slow path and the payload goes through, so no message is lost
/// forever and every synchronization policy stays live.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Probability a send is silently lost, in `[0, 1)`.
    pub loss_prob: f64,
    /// Probability a send fails with an observable transport error, in
    /// `[0, 1)`. `loss_prob + fail_prob` must stay below 1.
    pub fail_prob: f64,
    /// Probability a *delivered* message is also duplicated, in `[0, 1]`.
    /// The duplicate trails the original by a uniform lag within the ack
    /// timeout and is suppressed by the receiver's protocol-level dedup
    /// (see `crate::proto`): it costs bookkeeping, never state.
    pub dup_prob: f64,
    /// Per-hop acknowledgement timeout: how long a sender waits before
    /// declaring a silent loss, in milliseconds. Must be positive.
    pub ack_timeout_ms: f64,
    /// How quickly an observable transport error is detected, in
    /// milliseconds (typically well below `ack_timeout_ms`).
    pub fail_detect_ms: f64,
    /// Base retry backoff, in milliseconds. Attempt `a` (0-based) backs
    /// off `min(backoff_base_ms · 2^a, backoff_cap_ms)` before resending.
    pub backoff_base_ms: f64,
    /// Cap on the exponential backoff, in milliseconds.
    pub backoff_cap_ms: f64,
    /// Attempts before the transport escalates to the reliable slow path
    /// (the final attempt always delivers). At least 1.
    pub max_attempts: u32,
}

impl LinkFaults {
    /// A moderate profile: a few percent loss/failure/duplication with
    /// snappy retries — a believable flaky WAN.
    pub fn flaky() -> Self {
        LinkFaults {
            loss_prob: 0.05,
            fail_prob: 0.05,
            dup_prob: 0.05,
            ack_timeout_ms: 40.0,
            fail_detect_ms: 5.0,
            backoff_base_ms: 10.0,
            backoff_cap_ms: 160.0,
            max_attempts: 6,
        }
    }
}

/// Straggler delay spikes: with probability `prob` a worker's local step
/// takes `factor`× its drawn compute time (GC pause, thermal throttling,
/// contending tenant — the classic transient straggler).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelaySpikes {
    /// Spike probability per local step, in `[0, 1)`.
    pub prob: f64,
    /// Multiplier on the step's compute delay, at least 1.
    pub factor: f64,
}

/// A declarative description of everything that goes wrong during a run.
///
/// The empty plan ([`FaultPlan::none`], also `Default`) injects nothing
/// and draws nothing: a simulation under the empty plan is bitwise
/// identical to one without fault injection at all (the equivalence gate
/// in `tests/chaos.rs`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Transient worker crash/recover windows, if any.
    pub crash: Option<CrashProfile>,
    /// Workers that die permanently at fixed times.
    pub permanent: Vec<PermanentCrash>,
    /// Link loss / failure / duplication with retry + backoff, if any.
    pub link: Option<LinkFaults>,
    /// Straggler compute-delay spikes, if any.
    pub spikes: Option<DelaySpikes>,
}

impl FaultPlan {
    /// The empty plan: no faults, no draws.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Returns `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.crash.is_none()
            && self.permanent.is_empty()
            && self.link.is_none()
            && self.spikes.is_none()
    }

    /// Validates every component's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        let prob = |name: &str, p: f64| -> Result<(), String> {
            if !(0.0..1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1), got {p}"));
            }
            Ok(())
        };
        let finite_nonneg = |name: &str, v: f64| -> Result<(), String> {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be finite and non-negative, got {v}"));
            }
            Ok(())
        };
        if let Some(c) = &self.crash {
            prob("crash per_step", c.per_step)?;
            finite_nonneg("crash min_downtime_ms", c.min_downtime_ms)?;
            finite_nonneg("crash max_downtime_ms", c.max_downtime_ms)?;
            if c.max_downtime_ms < c.min_downtime_ms {
                return Err(format!(
                    "crash downtime range inverted: {} > {}",
                    c.min_downtime_ms, c.max_downtime_ms
                ));
            }
        }
        for p in &self.permanent {
            finite_nonneg("permanent crash at_ms", p.at_ms)?;
        }
        if let Some(l) = &self.link {
            prob("link loss_prob", l.loss_prob)?;
            prob("link fail_prob", l.fail_prob)?;
            if l.loss_prob + l.fail_prob >= 1.0 {
                return Err(format!(
                    "link loss_prob + fail_prob must stay below 1, got {}",
                    l.loss_prob + l.fail_prob
                ));
            }
            if !(0.0..=1.0).contains(&l.dup_prob) {
                return Err(format!(
                    "link dup_prob must be in [0, 1], got {}",
                    l.dup_prob
                ));
            }
            if !(l.ack_timeout_ms.is_finite() && l.ack_timeout_ms > 0.0) {
                return Err(format!(
                    "link ack_timeout_ms must be positive and finite, got {}",
                    l.ack_timeout_ms
                ));
            }
            finite_nonneg("link fail_detect_ms", l.fail_detect_ms)?;
            finite_nonneg("link backoff_base_ms", l.backoff_base_ms)?;
            finite_nonneg("link backoff_cap_ms", l.backoff_cap_ms)?;
            if l.backoff_cap_ms < l.backoff_base_ms {
                return Err(format!(
                    "link backoff cap {} below base {}",
                    l.backoff_cap_ms, l.backoff_base_ms
                ));
            }
            if l.max_attempts == 0 {
                return Err("link max_attempts must be at least 1".to_string());
            }
        }
        if let Some(s) = &self.spikes {
            prob("spike prob", s.prob)?;
            if !(s.factor.is_finite() && s.factor >= 1.0) {
                return Err(format!("spike factor must be at least 1, got {}", s.factor));
            }
        }
        Ok(())
    }

    /// [`FaultPlan::validate`] plus a bound on permanent-crash targets:
    /// over a virtual population, `PermanentCrash::worker` addresses a
    /// *registered* global client id, which must lie below `population`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range target (or any
    /// [`FaultPlan::validate`] failure).
    pub fn validate_for_population(&self, population: u64) -> Result<(), String> {
        self.validate()?;
        for p in &self.permanent {
            if p.worker as u64 >= population {
                return Err(format!(
                    "permanent crash targets worker {} but the registered population is {}",
                    p.worker, population
                ));
            }
        }
        Ok(())
    }
}

/// The outcome of pushing one transfer through [`FaultSampler::transfer`]:
/// how many sends were lost or failed, how many retries that cost, the
/// total extra delay, and whether the delivered message was duplicated.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransferOutcome {
    /// Sends silently lost (each cost `ack_timeout_ms`).
    pub messages_lost: u64,
    /// Sends that failed with an observable error (each cost
    /// `fail_detect_ms`).
    pub transfer_failures: u64,
    /// Resends after a lost/failed attempt (each cost its backoff).
    pub retries: u64,
    /// Total extra delay over a fault-free transfer, in milliseconds.
    pub penalty_ms: f64,
    /// When `Some(lag)`, a duplicate of the delivered message arrives
    /// `lag` milliseconds after the original.
    pub duplicate_lag_ms: Option<f64>,
}

/// A per-actor seeded source of fault draws (the fault-side analogue of
/// [`crate::DelaySampler`]).
///
/// # Example
///
/// ```
/// use hieradmo_netsim::fault::{FaultSampler, LinkFaults};
///
/// let mut a = FaultSampler::from_stream(7, 0);
/// let mut b = FaultSampler::from_stream(7, 0);
/// let lf = LinkFaults::flaky();
/// assert_eq!(a.transfer(&lf), b.transfer(&lf), "same stream, same faults");
/// ```
#[derive(Debug, Clone)]
pub struct FaultSampler {
    rng: StdRng,
}

impl FaultSampler {
    /// A sampler for fault stream `stream` of `master`, decorrelated from
    /// the delay stream of the same index (see [`FAULT_SEED_SALT`]).
    pub fn from_stream(master: u64, stream: u64) -> Self {
        FaultSampler {
            rng: StdRng::seed_from_u64(stream_seed(master ^ FAULT_SEED_SALT, stream)),
        }
    }

    /// One crash draw: `Some(downtime_ms)` when the actor crashes here.
    /// Draws nothing when `per_step` is zero, so an inert profile leaves
    /// the stream untouched.
    pub fn crash_downtime_ms(&mut self, c: &CrashProfile) -> Option<f64> {
        if c.per_step <= 0.0 {
            return None;
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        if u >= c.per_step {
            return None;
        }
        let frac: f64 = self.rng.gen_range(0.0..1.0);
        Some(c.min_downtime_ms + (c.max_downtime_ms - c.min_downtime_ms) * frac)
    }

    /// One straggler draw: `Some(factor)` when this step spikes. Draws
    /// nothing when `prob` is zero.
    pub fn spike_factor(&mut self, s: &DelaySpikes) -> Option<f64> {
        if s.prob <= 0.0 {
            return None;
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        (u < s.prob).then_some(s.factor)
    }

    /// Pushes one transfer through the lossy link: repeated attempts with
    /// capped exponential backoff until one delivers (the attempt at
    /// `max_attempts` always does — the reliable escalation path).
    pub fn transfer(&mut self, l: &LinkFaults) -> TransferOutcome {
        let mut out = TransferOutcome::default();
        for attempt in 0..l.max_attempts {
            let u: f64 = self.rng.gen_range(0.0..1.0);
            let delivered = if u < l.loss_prob {
                out.messages_lost += 1;
                out.penalty_ms += l.ack_timeout_ms;
                false
            } else if u < l.loss_prob + l.fail_prob {
                out.transfer_failures += 1;
                out.penalty_ms += l.fail_detect_ms;
                false
            } else {
                true
            };
            if delivered || attempt + 1 == l.max_attempts {
                break;
            }
            out.retries += 1;
            let backoff = l.backoff_base_ms * f64::from(1u32 << attempt.min(20));
            out.penalty_ms += backoff.min(l.backoff_cap_ms);
        }
        if l.dup_prob > 0.0 {
            let u: f64 = self.rng.gen_range(0.0..1.0);
            if u < l.dup_prob {
                let frac: f64 = self.rng.gen_range(0.0..1.0);
                out.duplicate_lag_ms = Some(l.ack_timeout_ms * frac);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permanent_crash_at_tier_path_resolves_to_flat_index() {
        let tree = TierTree::new(vec![
            hieradmo_topology::TierSpec::new(2, 2),
            hieradmo_topology::TierSpec::new(2, 2),
            hieradmo_topology::TierSpec::new(3, 5),
        ])
        .unwrap();
        let p = PermanentCrash::at_path(&tree, &TierPath(vec![1, 1, 1]), 250.0).unwrap();
        // Region 1 starts at flat worker 6, its edge 1 at 9; worker 1 → 10.
        assert_eq!(p.worker, 10);
        assert_eq!(p.at_ms, 250.0);
        assert!(PermanentCrash::at_path(&tree, &TierPath(vec![1, 1]), 0.0).is_err());
        assert!(PermanentCrash::at_path(&tree, &TierPath(vec![2, 0, 0]), 0.0).is_err());
    }

    fn full_plan() -> FaultPlan {
        FaultPlan {
            crash: Some(CrashProfile {
                per_step: 0.1,
                min_downtime_ms: 20.0,
                max_downtime_ms: 200.0,
            }),
            permanent: vec![PermanentCrash {
                worker: 1,
                at_ms: 500.0,
            }],
            link: Some(LinkFaults::flaky()),
            spikes: Some(DelaySpikes {
                prob: 0.2,
                factor: 5.0,
            }),
        }
    }

    #[test]
    fn empty_plan_is_empty_and_valid() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::default().validate().is_ok());
        assert!(!full_plan().is_empty());
        assert!(full_plan().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let mut p = full_plan();
        p.crash.as_mut().unwrap().per_step = 1.0;
        assert!(p.validate().is_err(), "certain crash must be rejected");

        let mut p = full_plan();
        p.crash.as_mut().unwrap().min_downtime_ms = 300.0;
        assert!(p.validate().is_err(), "inverted downtime range");

        let mut p = full_plan();
        p.link.as_mut().unwrap().loss_prob = 0.6;
        p.link.as_mut().unwrap().fail_prob = 0.5;
        assert!(p.validate().is_err(), "loss + fail >= 1");

        let mut p = full_plan();
        p.link.as_mut().unwrap().max_attempts = 0;
        assert!(p.validate().is_err());

        let mut p = full_plan();
        p.link.as_mut().unwrap().ack_timeout_ms = 0.0;
        assert!(p.validate().is_err());

        let mut p = full_plan();
        p.spikes.as_mut().unwrap().factor = 0.5;
        assert!(p.validate().is_err(), "sub-unit spike factor");

        let mut p = full_plan();
        p.permanent[0].at_ms = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn same_stream_replays_bitwise() {
        let plan = full_plan();
        let (c, l, s) = (
            plan.crash.unwrap(),
            plan.link.unwrap(),
            plan.spikes.unwrap(),
        );
        let mut a = FaultSampler::from_stream(42, 3);
        let mut b = FaultSampler::from_stream(42, 3);
        for _ in 0..64 {
            assert_eq!(a.crash_downtime_ms(&c), b.crash_downtime_ms(&c));
            assert_eq!(a.spike_factor(&s), b.spike_factor(&s));
            assert_eq!(a.transfer(&l), b.transfer(&l));
        }
    }

    #[test]
    fn fault_streams_decorrelate_from_delay_streams_and_each_other() {
        let l = LinkFaults {
            loss_prob: 0.45,
            fail_prob: 0.45,
            ..LinkFaults::flaky()
        };
        let seq = |stream: u64| -> Vec<TransferOutcome> {
            let mut s = FaultSampler::from_stream(9, stream);
            (0..32).map(|_| s.transfer(&l)).collect()
        };
        assert_ne!(seq(0), seq(1), "neighbouring fault streams must differ");
        // The salted master means fault stream 0 differs from what a
        // DelaySampler-style derivation of stream 0 would seed.
        assert_ne!(
            stream_seed(9 ^ FAULT_SEED_SALT, 0),
            stream_seed(9, 0),
            "fault and delay streams of the same index must not collide"
        );
    }

    #[test]
    fn inert_components_draw_nothing() {
        let c = CrashProfile {
            per_step: 0.0,
            min_downtime_ms: 1.0,
            max_downtime_ms: 2.0,
        };
        let s = DelaySpikes {
            prob: 0.0,
            factor: 3.0,
        };
        let l = LinkFaults {
            loss_prob: 0.9,
            fail_prob: 0.0,
            dup_prob: 0.0,
            max_attempts: 1,
            ..LinkFaults::flaky()
        };
        let mut f = FaultSampler::from_stream(1, 0);
        let mut g = FaultSampler::from_stream(1, 0);
        // f draws through the inert components, g does not: the next real
        // draw must agree, proving the inert paths consumed no entropy.
        assert_eq!(f.crash_downtime_ms(&c), None);
        assert_eq!(f.spike_factor(&s), None);
        assert_eq!(f.transfer(&l), g.transfer(&l));
    }

    #[test]
    fn forced_delivery_caps_the_attempt_loop() {
        // With certain loss, every attempt up to the cap is lost and the
        // final attempt escalates: retries == max_attempts - 1.
        let l = LinkFaults {
            loss_prob: 0.999,
            fail_prob: 0.0,
            dup_prob: 0.0,
            max_attempts: 4,
            ..LinkFaults::flaky()
        };
        let mut f = FaultSampler::from_stream(3, 0);
        for _ in 0..16 {
            let out = f.transfer(&l);
            assert!(out.messages_lost <= 4);
            assert_eq!(out.retries, out.messages_lost.saturating_sub(1));
            assert!(out.penalty_ms >= 0.0);
        }
    }

    #[test]
    fn backoff_is_capped() {
        let l = LinkFaults {
            loss_prob: 0.999,
            fail_prob: 0.0,
            dup_prob: 0.0,
            ack_timeout_ms: 1.0,
            backoff_base_ms: 100.0,
            backoff_cap_ms: 150.0,
            max_attempts: 8,
            ..LinkFaults::flaky()
        };
        let mut f = FaultSampler::from_stream(4, 0);
        let out = f.transfer(&l);
        // 7 retries, each backoff <= 150, plus 8 timeouts of 1ms.
        assert!(out.penalty_ms <= 7.0 * 150.0 + 8.0 * 1.0 + 1e-9);
    }

    #[test]
    fn plan_serializes_round_trip() {
        let plan = full_plan();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
