//! Device computation-delay profiles.
//!
//! Per-iteration compute delays are sampled from a lognormal distribution:
//! compute times are positive, right-skewed (GC pauses, thermal
//! throttling), and concentrate around a device-specific median — the same
//! qualitative shape the paper's physical sampling produces.

use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// A device's computation-delay model.
///
/// `median_ms` is the median time for the modeled unit of work (one local
/// training iteration for workers, one aggregation for edge/cloud);
/// `sigma` is the lognormal shape parameter (0 ⇒ deterministic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: String,
    /// Median per-unit computation time in milliseconds.
    pub median_ms: f64,
    /// Lognormal σ (dimensionless spread).
    pub sigma: f64,
}

impl DeviceProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `median_ms <= 0` or `sigma < 0`.
    pub fn new(name: impl Into<String>, median_ms: f64, sigma: f64) -> Self {
        let name = name.into();
        assert!(median_ms > 0.0, "median_ms must be positive for {name}");
        assert!(sigma >= 0.0, "sigma must be non-negative for {name}");
        DeviceProfile {
            name,
            median_ms,
            sigma,
        }
    }

    /// The paper's worker testbed: one laptop + three Android phones.
    /// Medians are one-CNN-iteration estimates scaled from the devices'
    /// relative CPU performance (i3 M380 slowest, Dimensity 1200 fastest).
    pub fn paper_workers() -> Vec<DeviceProfile> {
        vec![
            DeviceProfile::new("laptop-i3-m380", 120.0, 0.25),
            DeviceProfile::new("nubia-z17s-sd835", 90.0, 0.30),
            DeviceProfile::new("realme-gt-neo-d1200", 55.0, 0.30),
            DeviceProfile::new("redmi-k30u-d1000plus", 65.0, 0.30),
        ]
    }

    /// The paper's edge node (MacBook Pro 2018, i7-8750H): one edge
    /// aggregation.
    pub fn paper_edge() -> DeviceProfile {
        DeviceProfile::new("macbook-pro-2018-i7", 6.0, 0.20)
    }

    /// The paper's cloud (GPU tower server): one cloud aggregation.
    pub fn paper_cloud() -> DeviceProfile {
        DeviceProfile::new("gpu-tower-server", 2.0, 0.15)
    }

    /// Samples one computation delay in milliseconds.
    pub fn sample_ms(&self, rng: &mut StdRng) -> f64 {
        if self.sigma == 0.0 {
            return self.median_ms;
        }
        // LogNormal(μ, σ) has median e^μ; pick μ = ln(median).
        let dist = LogNormal::new(self.median_ms.ln(), self.sigma)
            .expect("sigma validated at construction");
        dist.sample(rng)
    }

    /// Samples one delay with an extra uniform ±5% system-noise factor
    /// (models background load unrelated to the lognormal service time).
    pub fn sample_noisy_ms(&self, rng: &mut StdRng) -> f64 {
        self.sample_ms(rng) * rng.gen_range(0.95..1.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_when_sigma_zero() {
        let d = DeviceProfile::new("fixed", 10.0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(d.sample_ms(&mut rng), 10.0);
        assert_eq!(d.sample_ms(&mut rng), 10.0);
    }

    #[test]
    fn median_is_respected() {
        let d = DeviceProfile::new("phone", 80.0, 0.3);
        let mut rng = StdRng::seed_from_u64(7);
        let mut samples: Vec<f64> = (0..4001).map(|_| d.sample_ms(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!(
            (median - 80.0).abs() < 8.0,
            "sample median {median} too far from 80"
        );
        assert!(samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn paper_testbed_has_four_workers_with_laptop_slowest() {
        let ws = DeviceProfile::paper_workers();
        assert_eq!(ws.len(), 4);
        let laptop = &ws[0];
        assert!(ws[1..].iter().all(|d| d.median_ms < laptop.median_ms));
        // Edge and cloud aggregations are much cheaper than an iteration.
        assert!(DeviceProfile::paper_edge().median_ms < 10.0);
        assert!(DeviceProfile::paper_cloud().median_ms < DeviceProfile::paper_edge().median_ms);
    }

    #[test]
    #[should_panic(expected = "median_ms must be positive")]
    fn rejects_zero_median() {
        let _ = DeviceProfile::new("bad", 0.0, 0.1);
    }
}
