//! Byzantine-robust aggregation rules.
//!
//! Every reduction of child states in this crate — worker → edge and
//! edge → cloud, for models *and* momenta — funnels through a
//! [`RobustAggregator`]. The default, [`RobustAggregator::Mean`], is the
//! paper's data-weighted mean and routes through the exact same
//! [`Vector::weighted_average`] code path as before, so a run configured
//! with the default is bitwise identical to one that predates this module.
//! The remaining rules trade a little statistical efficiency for bounded
//! influence of malicious children (see DESIGN §12 for the trade-off
//! table):
//!
//! * [`RobustAggregator::TrimmedMean`] — coordinate-wise: drop the
//!   `⌊trim_ratio · n⌋` largest and smallest values per coordinate, then
//!   take the data-weighted mean of the survivors. Tolerates up to
//!   `trim_ratio · n` Byzantine children.
//! * [`RobustAggregator::Median`] — coordinate-wise weighted median; the
//!   `trim_ratio → 0.5` limit. Maximal breakdown point, highest variance.
//! * [`RobustAggregator::NormClip`] — rescale any child whose Euclidean
//!   norm exceeds `threshold` down to the threshold, then take the
//!   data-weighted mean. Defends against magnitude attacks only, but is
//!   the cheapest rule and never discards honest information.

use hieradmo_tensor::{kernels, Vector};
use serde::{Deserialize, Serialize};

/// A rule for reducing weighted child vectors to one aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum RobustAggregator {
    /// The paper's data-weighted mean (the identity default): no defense,
    /// bitwise identical to the historical `Vector::weighted_average`.
    #[default]
    Mean,
    /// Coordinate-wise trimmed mean: per coordinate, drop the
    /// `⌊trim_ratio · n⌋` smallest and largest values, then take the
    /// data-weighted mean of the survivors (weights renormalized over the
    /// survivors). `trim_ratio = 0` never trims and reduces to `Mean`.
    TrimmedMean {
        /// Fraction trimmed from *each* end, in `[0, 0.5)`.
        trim_ratio: f64,
    },
    /// Coordinate-wise weighted median: per coordinate, the smallest value
    /// whose cumulative data weight reaches half the total; when the
    /// cumulative weight lands on exactly half at a value boundary, the two
    /// straddling values are averaged (the textbook even-count convention —
    /// without it, a median over two equally-weighted children degenerates
    /// to picking one child wholesale).
    Median,
    /// Norm clipping: children whose Euclidean norm exceeds `threshold`
    /// are rescaled to `threshold` before the data-weighted mean. When no
    /// child exceeds the threshold this reduces to `Mean`.
    NormClip {
        /// Maximum tolerated child norm; must be positive and finite.
        threshold: f32,
    },
}

impl RobustAggregator {
    /// A short human-readable label, used in exports and report tables.
    pub fn label(&self) -> String {
        match *self {
            RobustAggregator::Mean => "mean".to_string(),
            RobustAggregator::TrimmedMean { trim_ratio } => format!("trimmed({trim_ratio})"),
            RobustAggregator::Median => "median".to_string(),
            RobustAggregator::NormClip { threshold } => format!("clip({threshold})"),
        }
    }

    /// Validates the rule's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            RobustAggregator::Mean | RobustAggregator::Median => Ok(()),
            RobustAggregator::TrimmedMean { trim_ratio } => {
                if !(trim_ratio.is_finite() && (0.0..0.5).contains(&trim_ratio)) {
                    return Err(format!(
                        "trimmed-mean trim_ratio must be in [0, 0.5), got {trim_ratio}"
                    ));
                }
                Ok(())
            }
            RobustAggregator::NormClip { threshold } => {
                if !(threshold.is_finite() && threshold > 0.0) {
                    return Err(format!(
                        "norm-clip threshold must be positive and finite, got {threshold}"
                    ));
                }
                Ok(())
            }
        }
    }

    /// Reduces weighted child vectors under this rule.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty, the vectors' lengths differ, or the
    /// total weight is not positive — the same contract as
    /// [`Vector::weighted_average`].
    pub fn aggregate<'a, I>(&self, items: I) -> Vector
    where
        I: IntoIterator<Item = (f64, &'a Vector)>,
    {
        match *self {
            RobustAggregator::Mean => Vector::weighted_average(items),
            RobustAggregator::TrimmedMean { trim_ratio } => {
                let children: Vec<(f64, &Vector)> = items.into_iter().collect();
                let g = (trim_ratio * children.len() as f64).floor() as usize;
                if g == 0 {
                    // Nothing to trim: take the identical code path to Mean
                    // so the degenerate rule stays bitwise-compatible.
                    return Vector::weighted_average(children);
                }
                coordinate_wise(&children, |sorted| {
                    let kept = &sorted[g..sorted.len() - g];
                    let (mut acc, mut total) = (0.0f64, 0.0f64);
                    for &(v, w) in kept {
                        acc += w * v;
                        total += w;
                    }
                    (acc / total) as f32
                })
            }
            RobustAggregator::Median => {
                let children: Vec<(f64, &Vector)> = items.into_iter().collect();
                coordinate_wise(&children, |sorted| {
                    let half = sorted.iter().map(|&(_, w)| w).sum::<f64>() / 2.0;
                    let mut cum = 0.0f64;
                    for (idx, &(v, w)) in sorted.iter().enumerate() {
                        cum += w;
                        if cum >= half {
                            // Exactly half the weight sits at or below this
                            // value: the median straddles the boundary, so
                            // average with the next value (even-count
                            // convention).
                            return if cum == half && idx + 1 < sorted.len() {
                                ((v + sorted[idx + 1].0) / 2.0) as f32
                            } else {
                                v as f32
                            };
                        }
                    }
                    sorted.last().expect("median of no children").0 as f32
                })
            }
            RobustAggregator::NormClip { threshold } => {
                let children: Vec<(f64, &Vector)> = items.into_iter().collect();
                if children.iter().all(|(_, v)| v.norm() <= threshold) {
                    // No clip triggers: identical code path to Mean.
                    return Vector::weighted_average(children);
                }
                let clipped: Vec<(f64, Vector)> = children
                    .into_iter()
                    .map(|(w, v)| {
                        let n = v.norm();
                        if n > threshold {
                            (w, v.scaled(threshold / n))
                        } else {
                            (w, v.clone())
                        }
                    })
                    .collect();
                Vector::weighted_average(clipped.iter().map(|(w, v)| (*w, v)))
            }
        }
    }

    /// Reduces weighted child vectors **and** applies the Eq. 7 momentum
    /// lookahead `x⁺ = m + gamma · (m − y_old)` in one shot, returning
    /// `(m, x⁺)`.
    ///
    /// For [`RobustAggregator::Mean`] the whole thing is a single batched
    /// traversal ([`kernels::weighted_sum_batch`] +
    /// [`kernels::fused_aggregate_momentum`]); every other rule aggregates
    /// as usual and applies [`kernels::momentum_step`]. Both routes are
    /// bitwise identical to the historical
    /// `aggregate → clone → subtract → axpy` composition.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`RobustAggregator::aggregate`],
    /// or if `y_old`'s length differs from the children's.
    pub fn aggregate_momentum<'a, I>(
        &self,
        items: I,
        gamma: f32,
        y_old: &Vector,
    ) -> (Vector, Vector)
    where
        I: IntoIterator<Item = (f64, &'a Vector)>,
    {
        if let RobustAggregator::Mean = *self {
            let (weights, views) = Vector::collect_batch(items);
            let dim = views[0].len();
            let mut acc = vec![0.0f64; dim];
            kernels::weighted_sum_batch(&mut acc, &weights, &views);
            let total = Vector::total_weight(&weights);
            let mut mean = vec![0.0f32; dim];
            let mut looked = vec![0.0f32; dim];
            kernels::fused_aggregate_momentum(
                &acc,
                total,
                gamma,
                y_old.as_slice(),
                &mut mean,
                &mut looked,
            );
            (Vector::from(mean), Vector::from(looked))
        } else {
            let mean = self.aggregate(items);
            let mut looked = vec![0.0f32; mean.len()];
            kernels::momentum_step(&mut looked, gamma, mean.as_slice(), y_old.as_slice());
            (mean, Vector::from(looked))
        }
    }
}

/// Applies `reduce` to every coordinate's `(value, weight)` list, sorted
/// ascending by value (`f64::total_cmp`, so NaNs sort to the extremes and
/// get trimmed first). Values are widened to `f64` so the per-coordinate
/// arithmetic matches [`Vector::weighted_average`]'s accumulation width.
fn coordinate_wise(children: &[(f64, &Vector)], reduce: impl Fn(&[(f64, f64)]) -> f32) -> Vector {
    let (_, first) = children
        .first()
        .expect("aggregate requires at least one child");
    let dim = first.len();
    let mut sorted: Vec<(f64, f64)> = Vec::with_capacity(children.len());
    let mut out = Vec::with_capacity(dim);
    for j in 0..dim {
        sorted.clear();
        for &(w, v) in children {
            assert_eq!(v.len(), dim, "aggregate length mismatch");
            sorted.push((f64::from(v.as_slice()[j]), w));
        }
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        out.push(reduce(&sorted));
    }
    Vector::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(rows: &[&[f32]]) -> Vec<Vector> {
        rows.iter().map(|r| Vector::from(r.to_vec())).collect()
    }

    fn weighted(vs: &[Vector]) -> Vec<(f64, Vector)> {
        vs.iter().map(|v| (1.0, v.clone())).collect()
    }

    fn agg(rule: RobustAggregator, items: &[(f64, Vector)]) -> Vector {
        rule.aggregate(items.iter().map(|(w, v)| (*w, v)))
    }

    #[test]
    fn mean_matches_weighted_average_bitwise() {
        let vs = vecs(&[&[1.0, -2.0, 0.5], &[3.0, 4.0, -1.5]]);
        let items = [(0.25, vs[0].clone()), (0.75, vs[1].clone())];
        let want = Vector::weighted_average(items.iter().map(|(w, v)| (*w, v)));
        assert_eq!(agg(RobustAggregator::Mean, &items), want);
        // Degenerate rules reduce to the identical bit pattern.
        assert_eq!(
            agg(RobustAggregator::TrimmedMean { trim_ratio: 0.2 }, &items),
            want,
            "floor(0.2 * 2) = 0: nothing trimmed"
        );
        assert_eq!(
            agg(RobustAggregator::NormClip { threshold: 100.0 }, &items),
            want,
            "no norm exceeds 100"
        );
    }

    #[test]
    fn aggregate_momentum_matches_the_unfused_composition_bitwise() {
        let vs = vecs(&[
            &[1.0, -2.0, 0.5, 7.25],
            &[3.0, 4.0, -1.5, 0.125],
            &[-0.75, 2.5, 9.0, -3.0],
        ]);
        let items = [
            (0.25, vs[0].clone()),
            (0.5, vs[1].clone()),
            (0.25, vs[2].clone()),
        ];
        let y_old = Vector::from(vec![0.5, -1.25, 2.0, 0.0]);
        let gamma = 0.625f32;
        for rule in [
            RobustAggregator::Mean,
            RobustAggregator::TrimmedMean { trim_ratio: 0.34 },
            RobustAggregator::Median,
            RobustAggregator::NormClip { threshold: 2.0 },
        ] {
            let mean_ref = agg(rule, &items);
            let mut looked_ref = mean_ref.clone();
            let delta = &mean_ref - &y_old;
            looked_ref.axpy(gamma, &delta);
            let (mean, looked) =
                rule.aggregate_momentum(items.iter().map(|(w, v)| (*w, v)), gamma, &y_old);
            assert_eq!(mean, mean_ref, "{}", rule.label());
            assert_eq!(looked, looked_ref, "{}", rule.label());
        }
    }

    #[test]
    fn trimmed_mean_drops_the_extremes() {
        let vs = vecs(&[&[1.0], &[2.0], &[3.0], &[100.0], &[-100.0]]);
        let rule = RobustAggregator::TrimmedMean { trim_ratio: 0.2 };
        let out = agg(rule, &weighted(&vs));
        assert!((out.as_slice()[0] - 2.0).abs() < 1e-6, "got {out:?}");
    }

    #[test]
    fn trimmed_mean_renormalizes_surviving_weights() {
        let vs = vecs(&[&[0.0], &[10.0], &[20.0], &[1000.0]]);
        let items: Vec<(f64, Vector)> = vs
            .iter()
            .zip([1.0, 2.0, 1.0, 1.0])
            .map(|(v, w)| (w, v.clone()))
            .collect();
        // g = floor(0.25 * 4) = 1: drop 0.0 and 1000.0, mean of
        // {10 (w=2), 20 (w=1)} = 40/3.
        let out = agg(RobustAggregator::TrimmedMean { trim_ratio: 0.25 }, &items);
        assert!((out.as_slice()[0] - 40.0 / 3.0).abs() < 1e-4, "got {out:?}");
    }

    #[test]
    fn median_is_coordinate_wise_and_weighted() {
        let vs = vecs(&[&[1.0, 9.0], &[2.0, 8.0], &[1000.0, -1000.0]]);
        let out = agg(RobustAggregator::Median, &weighted(&vs));
        assert_eq!(out.as_slice(), &[2.0, 8.0]);

        // A heavy child pulls the weighted median to itself.
        let items = vec![
            (5.0, Vector::from(vec![1.0])),
            (1.0, Vector::from(vec![2.0])),
            (1.0, Vector::from(vec![3.0])),
        ];
        let out = agg(RobustAggregator::Median, &items);
        assert_eq!(out.as_slice(), &[1.0]);
    }

    #[test]
    fn median_of_an_even_equal_weight_split_averages_the_straddle() {
        // Two equally-weighted children: picking either one wholesale would
        // let a single child dictate the aggregate; the even-count
        // convention averages them.
        let vs = vecs(&[&[1.0, -4.0], &[3.0, 2.0]]);
        let out = agg(RobustAggregator::Median, &weighted(&vs));
        assert_eq!(out.as_slice(), &[2.0, -1.0]);
        // Four equal weights: midpoint of the inner two.
        let vs = vecs(&[&[1.0], &[2.0], &[4.0], &[100.0]]);
        let out = agg(RobustAggregator::Median, &weighted(&vs));
        assert_eq!(out.as_slice(), &[3.0]);
    }

    #[test]
    fn norm_clip_rescales_only_the_oversized() {
        let vs = vecs(&[&[3.0, 4.0], &[30.0, 40.0]]);
        let rule = RobustAggregator::NormClip { threshold: 5.0 };
        let out = agg(rule, &weighted(&vs));
        // The second child is rescaled from norm 50 to norm 5 → [3, 4];
        // mean of [3,4] and [3,4] is [3,4].
        assert!((out.as_slice()[0] - 3.0).abs() < 1e-5);
        assert!((out.as_slice()[1] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn nan_coordinates_sort_to_the_extremes_and_get_trimmed() {
        // `f32::total_cmp` sorts (positive) NaN above every number, so the
        // single NaN lands in the top trim slot and the honest middle
        // values [2, 3, 4] are averaged.
        let vs = vecs(&[&[1.0], &[2.0], &[3.0], &[4.0], &[f32::NAN]]);
        let out = agg(
            RobustAggregator::TrimmedMean { trim_ratio: 0.2 },
            &weighted(&vs),
        );
        assert_eq!(out.as_slice(), &[3.0], "NaNs must be trimmed, not averaged");
        let out = agg(RobustAggregator::Median, &weighted(&vs[..4]));
        assert!(out.as_slice()[0].is_finite(), "median must dodge the NaN");
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(RobustAggregator::Mean.validate().is_ok());
        assert!(RobustAggregator::Median.validate().is_ok());
        assert!(RobustAggregator::TrimmedMean { trim_ratio: 0.49 }
            .validate()
            .is_ok());
        for r in [0.5, 1.0, -0.1, f64::NAN] {
            assert!(
                RobustAggregator::TrimmedMean { trim_ratio: r }
                    .validate()
                    .is_err(),
                "trim_ratio {r} should be rejected"
            );
        }
        assert!(RobustAggregator::NormClip { threshold: 1.0 }
            .validate()
            .is_ok());
        for t in [0.0, -1.0, f32::NAN, f32::INFINITY] {
            assert!(
                RobustAggregator::NormClip { threshold: t }
                    .validate()
                    .is_err(),
                "threshold {t} should be rejected"
            );
        }
    }

    #[test]
    fn default_is_the_identity_mean() {
        assert_eq!(RobustAggregator::default(), RobustAggregator::Mean);
    }

    #[test]
    fn serializes_round_trip() {
        for rule in [
            RobustAggregator::Mean,
            RobustAggregator::TrimmedMean { trim_ratio: 0.25 },
            RobustAggregator::Median,
            RobustAggregator::NormClip { threshold: 2.5 },
        ] {
            let json = serde_json::to_string(&rule).unwrap();
            let back: RobustAggregator = serde_json::from_str(&json).unwrap();
            assert_eq!(back, rule);
        }
    }
}
