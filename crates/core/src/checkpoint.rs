//! Run checkpointing: persist a finished (or interrupted) run's essentials
//! — config, curve, γℓ trace and final parameters — as JSON, so long
//! experiments survive process restarts and `EXPERIMENTS.md` numbers stay
//! regenerable from artifacts.
//!
//! Two snapshot kinds live here:
//!
//! * [`Checkpoint`] — the *outcome* of a run (curve + final parameters),
//!   enough to regenerate report numbers but not to continue training;
//! * [`TrainingSnapshot`] — the full mid-run federation state at an edge
//!   boundary, enough to resume training bitwise identically via
//!   [`crate::run_resumed`]. This is also the state shape the
//!   co-simulation runtime's crash-recovery path restores workers from.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use hieradmo_metrics::ConvergenceCurve;
use hieradmo_tensor::Vector;
use hieradmo_topology::ElasticSnapshot;

use crate::config::RunConfig;
use crate::driver::RunResult;
use crate::state::{CloudState, EdgeState, TierState, WorkerState};

/// The serializable snapshot of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Algorithm name (Table II label).
    pub algorithm: String,
    /// The configuration the run used.
    pub config: RunConfig,
    /// Accuracy/loss trajectory.
    pub curve: ConvergenceCurve,
    /// `(k, mean γℓ)` trace.
    pub gamma_trace: Vec<(usize, f32)>,
    /// Final global model parameters.
    pub final_params: Vector,
}

impl Checkpoint {
    /// Captures a checkpoint from a run result and its config.
    pub fn capture(result: &RunResult, config: &RunConfig) -> Self {
        Checkpoint {
            algorithm: result.algorithm.clone(),
            config: config.clone(),
            curve: result.curve.clone(),
            gamma_trace: result.gamma_trace.clone(),
            final_params: result.final_params.clone(),
        }
    }

    /// Serializes to a JSON string.
    ///
    /// # Panics
    ///
    /// Never panics in practice: all fields serialize infallibly.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint fields always serialize")
    }

    /// Parses a checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error message on malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Writes the checkpoint to a file (atomically via a temp file +
    /// rename, so a crash never leaves a torn checkpoint).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.to_json())?;
        fs::rename(&tmp, path)
    }

    /// Loads a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; malformed JSON maps to
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// The complete federation state at a tick boundary — everything
/// [`crate::run_resumed`] needs to continue a run exactly where
/// [`crate::run_until`] stopped it.
///
/// The batcher and dropout RNG streams are *not* stored: both are seeded
/// from `RunConfig::seed` alone, so the resuming driver replays their
/// draws up to `tick` and lands on the identical stream position. That
/// keeps the snapshot small (model-sized, not run-sized) and makes the
/// resumed trajectory bitwise identical to an uninterrupted run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSnapshot {
    /// Algorithm name — resuming under a different strategy is rejected.
    pub algorithm: String,
    /// The tick `t` the state was captured after (a multiple of `τ`).
    pub tick: usize,
    /// Worker states in flat (edge-major) order.
    pub workers: Vec<WorkerState>,
    /// Edge states.
    pub edges: Vec<EdgeState>,
    /// Cloud state.
    pub cloud: CloudState,
    /// Middle-tier states on N-tier runs, one vector per middle depth in
    /// [`hieradmo_topology::TierTree::middle_depths`] order. Empty on
    /// three-tier runs, so depth-3 snapshots keep their seed wire format.
    #[serde(default)]
    pub middle: Vec<Vec<TierState>>,
    /// The elastic topology version in force at `tick`, on elastic runs
    /// ([`crate::elastic::run_elastic_until`]): which stable edge ids are
    /// live and which registered worker sits where, so a resume replays
    /// the remaining churn boundaries against the identical tree. `None`
    /// on frozen-tree runs, keeping their seed wire format.
    #[serde(default)]
    pub topology: Option<ElasticSnapshot>,
}

impl TrainingSnapshot {
    /// Serializes to a JSON string.
    ///
    /// # Panics
    ///
    /// Never panics in practice: all fields serialize infallibly.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot fields always serialize")
    }

    /// Parses a snapshot from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error message on malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Writes the snapshot to a file (atomically via a temp file + rename,
    /// so a crash never leaves a torn snapshot).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.to_json())?;
        fs::rename(&tmp, path)
    }

    /// Loads a snapshot from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; malformed JSON maps to
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieradmo_metrics::EvalPoint;

    fn sample() -> Checkpoint {
        let curve: ConvergenceCurve = [EvalPoint {
            iteration: 50,
            train_loss: 0.4,
            test_loss: 0.5,
            test_accuracy: 0.87,
        }]
        .into_iter()
        .collect();
        Checkpoint {
            algorithm: "HierAdMo".into(),
            config: RunConfig::default(),
            curve,
            gamma_trace: vec![(1, 0.4), (2, 0.7)],
            final_params: Vector::from(vec![0.1, -0.2, 0.3]),
        }
    }

    #[test]
    fn json_round_trips() {
        let cp = sample();
        let back = Checkpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn file_round_trips() {
        let dir = std::env::temp_dir().join("hieradmo-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.json");
        let cp = sample();
        cp.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back, cp);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_invalid_data() {
        let err = Checkpoint::from_json("{not json").unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn training_snapshot_round_trips_json_and_file() {
        use crate::state::FlState;
        use hieradmo_topology::{Hierarchy, Weights};
        let h = Hierarchy::new(vec![2, 1]);
        let w = Weights::from_samples(&h, &[10, 30, 20]);
        let s = FlState::new(h, w, &Vector::from(vec![1.5, -0.5]));
        let snap = TrainingSnapshot {
            algorithm: "HierAdMo".into(),
            tick: 10,
            workers: s.workers.clone(),
            edges: s.edges.clone(),
            cloud: s.cloud.clone(),
            middle: vec![vec![s.cloud.clone()]],
            topology: Some(
                hieradmo_topology::TopologyVersion::initial(&[2, 1], 3).expect("valid tree"),
            ),
        };
        let back = TrainingSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        // Seed-era snapshots carry no `middle` key; it defaults to empty.
        // Pre-elastic snapshots carry no `topology` key; it defaults to
        // `None` (a frozen tree).
        let flat = TrainingSnapshot {
            middle: Vec::new(),
            topology: None,
            ..snap.clone()
        };
        let legacy = flat
            .to_json()
            .replace(",\"middle\":[]", "")
            .replace(",\"topology\":null", "");
        assert!(legacy.len() < flat.to_json().len(), "middle key not found");
        assert!(!legacy.contains("topology"));
        let back = TrainingSnapshot::from_json(&legacy).unwrap();
        assert_eq!(back, flat);

        let dir = std::env::temp_dir().join("hieradmo-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        snap.save(&path).unwrap();
        let back = TrainingSnapshot::load(&path).unwrap();
        assert_eq!(back, snap);
        std::fs::remove_file(&path).ok();

        assert!(TrainingSnapshot::from_json("{truncated").is_err());
    }

    #[test]
    fn capture_from_run_result() {
        use crate::algorithms::testutil::{quick_cfg, quick_run};
        use crate::algorithms::HierAdMo;
        use hieradmo_topology::Hierarchy;
        let cfg = quick_cfg();
        let res = quick_run(
            &HierAdMo::adaptive(0.05, 0.5),
            Hierarchy::balanced(2, 2),
            cfg.clone(),
        );
        let cp = Checkpoint::capture(&res, &cfg);
        assert_eq!(cp.algorithm, "HierAdMo");
        assert_eq!(cp.curve, res.curve);
        assert_eq!(cp.final_params.len(), res.final_params.len());
        // And it survives serialization.
        let back = Checkpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(back.final_params, cp.final_params);
    }
}
