//! The complete state of an N-tier federation, shared by all algorithms.
//!
//! Field names follow Table I of the paper: worker `{i, ℓ}` holds model
//! `x_{i,ℓ}` and momentum `y_{i,ℓ}`; every aggregator tier — edge,
//! middle, or cloud — holds one [`TierState`] with the post-aggregation
//! values `y_{ℓ−}` / `x_{ℓ+}` / `y_{ℓ+}` plus the server-momentum fields
//! the two-tier baselines keep at the root. Algorithms use whichever
//! fields they need and leave the rest untouched.

use hieradmo_tensor::Vector;
use hieradmo_topology::{Hierarchy, TierTree, Weights};
use serde::{Deserialize, Serialize};

use crate::robust::RobustAggregator;

/// Per-worker state.
///
/// Serializable so a run can be snapshotted mid-training and resumed
/// bitwise-identically (see [`crate::checkpoint::TrainingSnapshot`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerState {
    /// Model parameters `x_{i,ℓ}`.
    pub x: Vector,
    /// NAG momentum parameter `y_{i,ℓ}` (the "lookahead" point).
    pub y: Vector,
    /// Velocity `v_{i,ℓ} = y_t − y_{t−1}` for velocity-form algorithms
    /// (FedADC's drift-controlled velocity, Mime's momentum copy).
    pub v: Vector,
    /// `Σ_t ∇F_{i,ℓ}(x^t)` accumulated over the current edge interval
    /// (received by the edge in Algorithm 1 line 9).
    pub grad_accum: Vector,
    /// `Σ_t y^t_{i,ℓ}` accumulated over the current edge interval.
    pub y_accum: Vector,
    /// `Σ_t v^t_{i,ℓ} = Σ_t (y^t − y^{t−1})` accumulated over the current
    /// edge interval — the *displacement* basis used by the agreement and
    /// gradient-alignment adaptive variants (see
    /// [`crate::algorithms::GammaMode`]).
    pub v_accum: Vector,
    /// Number of local steps accumulated since the last reset (lets
    /// aggregators normalize the sums without knowing τ).
    pub steps: usize,
    /// Gradient scratch buffer, reused across local steps so the steady
    /// state allocates nothing. Transient working memory, *not* algorithm
    /// state: its contents after a step (the last mini-batch gradient) are
    /// deterministic but carry no meaning to aggregators.
    pub scratch: Vector,
}

impl WorkerState {
    /// Fresh worker state at initial model `x0` (`y⁰ = x⁰`, zero velocity
    /// and accumulators — Algorithm 1 line 1).
    pub fn new(x0: &Vector) -> Self {
        WorkerState {
            x: x0.clone(),
            y: x0.clone(),
            v: Vector::zeros(x0.len()),
            grad_accum: Vector::zeros(x0.len()),
            y_accum: Vector::zeros(x0.len()),
            v_accum: Vector::zeros(x0.len()),
            steps: 0,
            scratch: Vector::zeros(x0.len()),
        }
    }

    /// Zero-dimensional stand-in used by the execution engine while the
    /// real state is checked out to a worker thread. Never observed by
    /// algorithms.
    pub(crate) fn placeholder() -> Self {
        WorkerState::new(&Vector::zeros(0))
    }

    /// Clears both edge-interval accumulators (done at every aggregation).
    pub fn reset_accumulators(&mut self) {
        self.grad_accum = Vector::zeros(self.x.len());
        self.y_accum = Vector::zeros(self.x.len());
        self.v_accum = Vector::zeros(self.x.len());
        self.steps = 0;
    }
}

/// State of one aggregator node at *any* non-leaf tier — edge, middle,
/// or cloud root. One struct serves every level so deeper trees are just
/// more vectors of the same state, and a middle node's children are
/// always `&mut [TierState]` whether they are edges or lower middles.
///
/// Field naming follows the edge row of Table I; at the root, `x_plus`
/// *is* the cloud model `x` (line 19) and `y_plus` the cloud momentum
/// `y` (line 18). Fields a given role never touches stay at their
/// initial values and cost one model-sized vector each.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierState {
    /// The node's model: `x_{ℓ+}` at an edge (after the edge momentum
    /// update, line 13), the global `x` at the root.
    pub x_plus: Vector,
    /// The node's momentum: `y_{ℓ+}` at an edge (line 12; its previous
    /// value feeds line 13), the cloud `y` at the root.
    pub y_plus: Vector,
    /// Aggregated child momentum `y_{ℓ−}` (line 11).
    pub y_minus: Vector,
    /// Server momentum/velocity for aggregator-momentum baselines
    /// (FedMom, SlowMo, FastSlowMo, Mime's statistic) — root-only today.
    pub v: Vector,
    /// Previous model, kept by server-momentum baselines to form the
    /// pseudo-gradient `x_prev − x̄` — root-only today.
    pub x_prev: Vector,
    /// The momentum factor `γℓ` used at the latest aggregation (adapted
    /// by HierAdMo, fixed for HierAdMo-R) — recorded per tier for the
    /// Fig. 2(i)–(k) diagnostics.
    pub gamma_edge: f32,
    /// The weighted cosine `cos θ_{k,ℓ}` measured at the latest
    /// aggregation (Eq. 6), recorded for diagnostics.
    pub cos_theta: f32,
}

/// Per-edge state: the leaf-parent instance of [`TierState`].
pub type EdgeState = TierState;

/// Cloud (root) state: the root instance of [`TierState`]. The root's
/// model and momentum live in [`TierState::x_plus`] / [`TierState::y_plus`].
pub type CloudState = TierState;

impl TierState {
    pub(crate) fn new(x0: &Vector) -> Self {
        TierState {
            x_plus: x0.clone(),
            y_plus: x0.clone(),
            y_minus: x0.clone(),
            v: Vector::zeros(x0.len()),
            x_prev: x0.clone(),
            gamma_edge: 0.0,
            cos_theta: 0.0,
        }
    }

    /// Zero-dimensional stand-in used by the execution engine while the
    /// real state is checked out to a worker thread.
    pub(crate) fn placeholder() -> Self {
        TierState::new(&Vector::zeros(0))
    }
}

/// Full federation state: hierarchy, data weights, and all tier states.
#[derive(Debug, Clone)]
pub struct FlState {
    /// The cloud → edge → worker tree.
    pub hierarchy: Hierarchy,
    /// Data-size weights `D_{i,ℓ}/D_ℓ`, `D_ℓ/D`.
    pub weights: Weights,
    /// Worker states in flat order.
    pub workers: Vec<WorkerState>,
    /// Edge (leaf-parent tier) states.
    pub edges: Vec<EdgeState>,
    /// Cloud (root) state.
    pub cloud: CloudState,
    /// Middle-tier states for depth ≥ 4 trees, outer-indexed by tier
    /// depth in [`TierTree::middle_depths`] order (top-down), inner by
    /// node. Empty — and never touched by any hook — on three-tier runs.
    pub middle: Vec<Vec<TierState>>,
    /// The tier tree behind `middle`, when this federation runs the
    /// N-tier path. `None` on the seed three-tier path.
    pub tree: Option<TierTree>,
    /// The aggregation rule every child reduction routes through. The
    /// default ([`RobustAggregator::Mean`]) is the paper's data-weighted
    /// mean and keeps runs bitwise identical to the pre-robustness code.
    /// Runtime policy, *not* algorithm state: snapshots do not carry it —
    /// a resumed run takes the rule from its `RunConfig`.
    pub aggregator: RobustAggregator,
}

impl FlState {
    /// Initializes every tier from the same initial model `x0`
    /// (Algorithm 1 lines 1–2: identical `x⁰` everywhere, `y⁰ = x⁰`).
    ///
    /// # Panics
    ///
    /// Panics if `x0` is empty.
    pub fn new(hierarchy: Hierarchy, weights: Weights, x0: &Vector) -> Self {
        assert!(!x0.is_empty(), "initial model must be non-empty");
        let workers = (0..hierarchy.num_workers())
            .map(|_| WorkerState::new(x0))
            .collect();
        let edges = (0..hierarchy.num_edges())
            .map(|_| EdgeState::new(x0))
            .collect();
        FlState {
            hierarchy,
            weights,
            workers,
            edges,
            cloud: CloudState::new(x0),
            middle: Vec::new(),
            tree: None,
            aggregator: RobustAggregator::default(),
        }
    }

    /// Attaches a tier tree, allocating one [`TierState`] per middle
    /// node (initialized like every other tier: `x⁰` everywhere,
    /// `y⁰ = x⁰`). The tree's edge tier must span this state's
    /// hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the tree's edge/worker counts disagree with the
    /// hierarchy.
    pub fn attach_tree(&mut self, tree: TierTree) {
        assert_eq!(
            tree.num_edges(),
            self.hierarchy.num_edges(),
            "tier tree spans {} edges for a hierarchy with {}",
            tree.num_edges(),
            self.hierarchy.num_edges()
        );
        assert_eq!(
            tree.num_workers(),
            self.hierarchy.num_workers(),
            "tier tree spans {} workers for a hierarchy with {}",
            tree.num_workers(),
            self.hierarchy.num_workers()
        );
        let x0 = self.cloud.x_plus.clone();
        self.middle = tree
            .middle_depths()
            .map(|d| (0..tree.nodes_at(d)).map(|_| TierState::new(&x0)).collect())
            .collect();
        self.tree = Some(tree);
    }

    /// Data weight of one middle node's subtree within its parent's
    /// subtree: the sum of its edges' `D_ℓ/D` shares, renormalized so
    /// siblings sum to 1. `depth` indexes the tree as in
    /// [`TierTree::middle_depths`]; for the root's children pass
    /// `depth = 1`.
    ///
    /// # Panics
    ///
    /// Panics if no tree is attached or the node is out of range.
    pub fn subtree_weight(&self, depth: usize, node: usize) -> f64 {
        let tree = self.tree.as_ref().expect("subtree_weight needs a tree");
        let span = tree.edges_per_node(depth);
        let share = |n: usize| -> f64 {
            (n * span..(n + 1) * span)
                .map(|e| self.weights.edge_in_total(e))
                .sum()
        };
        let parent_fanout = tree.levels()[depth - 1].fanout;
        let first_sibling = (node / parent_fanout) * parent_fanout;
        let parent_share: f64 = (first_sibling..first_sibling + parent_fanout)
            .map(&share)
            .sum();
        share(node) / parent_share
    }

    /// Model dimension.
    pub fn dim(&self) -> usize {
        self.cloud.x_plus.len()
    }

    /// Data-weighted reduction over one edge's workers of an arbitrary
    /// per-worker vector (the `Σᵢ D_{i,ℓ}/D_ℓ · (·)` primitive of lines
    /// 11–12), routed through [`FlState::aggregator`].
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn edge_average<F>(&self, edge: usize, f: F) -> Vector
    where
        F: Fn(&WorkerState) -> &Vector,
    {
        self.aggregator.aggregate(
            self.hierarchy
                .edge_workers(edge)
                .map(|i| (self.weights.worker_in_edge(i), f(&self.workers[i]))),
        )
    }

    /// Data-weighted reduction over edges of an arbitrary per-edge vector
    /// (the `Σℓ D_ℓ/D · (·)` primitive of lines 18–19), routed through
    /// [`FlState::aggregator`].
    pub fn cloud_average<F>(&self, f: F) -> Vector
    where
        F: Fn(&EdgeState) -> &Vector,
    {
        self.aggregator.aggregate(
            self.edges
                .iter()
                .enumerate()
                .map(|(l, e)| (self.weights.edge_in_total(l), f(e))),
        )
    }

    /// Reduces an arbitrary weighted item list under the state's
    /// aggregation rule — the primitive behind the staleness-aware cloud
    /// hooks, which mix current and snapshotted edge states and so cannot
    /// use the closure form of [`FlState::cloud_average`].
    pub fn aggregate<'a, I>(&self, items: I) -> Vector
    where
        I: IntoIterator<Item = (f64, &'a Vector)>,
    {
        self.aggregator.aggregate(items)
    }

    /// Data-weighted average of all worker models — the global model used
    /// for evaluation between cloud rounds.
    pub fn average_worker_models(&self) -> Vector {
        Vector::weighted_average(
            self.workers
                .iter()
                .enumerate()
                .map(|(i, w)| (self.weights.worker_in_total(i), &w.x)),
        )
    }

    /// Applies a closure to every worker under one edge.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn for_edge_workers<F>(&mut self, edge: usize, mut f: F)
    where
        F: FnMut(&mut WorkerState),
    {
        for i in self.hierarchy.edge_workers(edge) {
            f(&mut self.workers[i]);
        }
    }

    /// Applies a closure to every worker in the system.
    pub fn for_all_workers<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut WorkerState),
    {
        for w in &mut self.workers {
            f(w);
        }
    }

    /// Borrows one edge's slice of the federation: its workers, its
    /// [`EdgeState`], and the data weights — everything
    /// [`crate::Strategy::edge_aggregate`] may touch.
    ///
    /// Views of distinct edges are disjoint (workers are stored in
    /// edge-major flat order), which is what lets the execution engine run
    /// all edges' aggregations in parallel with identical results.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn edge_view(&mut self, edge: usize) -> EdgeView<'_> {
        let range = self.hierarchy.edge_workers(edge);
        let offset = range.start;
        EdgeView {
            edge,
            offset,
            workers: &mut self.workers[range],
            state: &mut self.edges[edge],
            weights: &self.weights,
            aggregator: self.aggregator,
        }
    }
}

/// Mutable view of a single edge: the unit of work of
/// [`crate::Strategy::edge_aggregate`].
///
/// Everything an edge aggregator is allowed to read or write lives here —
/// the edge's own workers (local indices `0..num_workers()`), its
/// [`EdgeState`], and read-only data weights. Cross-edge and cloud state
/// are deliberately out of reach, making data-race freedom of parallel
/// edge aggregation a type-level fact rather than a convention.
#[derive(Debug)]
pub struct EdgeView<'a> {
    edge: usize,
    offset: usize,
    /// This edge's workers, locally indexed from 0.
    pub workers: &'a mut [WorkerState],
    /// This edge's aggregation state.
    pub state: &'a mut EdgeState,
    weights: &'a Weights,
    aggregator: RobustAggregator,
}

impl<'a> EdgeView<'a> {
    /// Assembles a view from detached parts (used by the execution engine
    /// when edge work is shipped to a pool thread). `offset` is the flat
    /// index of the edge's first worker.
    pub(crate) fn detached(
        edge: usize,
        offset: usize,
        workers: &'a mut [WorkerState],
        state: &'a mut EdgeState,
        weights: &'a Weights,
        aggregator: RobustAggregator,
    ) -> Self {
        EdgeView {
            edge,
            offset,
            workers,
            state,
            weights,
            aggregator,
        }
    }

    /// The edge index this view covers.
    pub fn edge(&self) -> usize {
        self.edge
    }

    /// Number of workers under this edge.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// In-edge data weight `D_{i,ℓ}/D_ℓ` of the worker at local index
    /// `local`.
    ///
    /// # Panics
    ///
    /// Panics if `local >= num_workers()`.
    pub fn worker_weight(&self, local: usize) -> f64 {
        assert!(
            local < self.workers.len(),
            "local worker index out of range"
        );
        self.weights.worker_in_edge(self.offset + local)
    }

    /// Iterates `(D_{i,ℓ}/D_ℓ, worker)` pairs in local order.
    pub fn weighted_workers(&self) -> impl Iterator<Item = (f64, &WorkerState)> {
        self.workers
            .iter()
            .enumerate()
            .map(|(j, w)| (self.weights.worker_in_edge(self.offset + j), w))
    }

    /// Data-weighted reduction of an arbitrary per-worker vector — the
    /// edge counterpart of [`FlState::edge_average`], routed through the
    /// federation's [`RobustAggregator`] so every `Strategy` written
    /// against this API gets Byzantine defenses for free.
    pub fn average<F>(&self, f: F) -> Vector
    where
        F: Fn(&WorkerState) -> &Vector,
    {
        self.aggregator
            .aggregate(self.weighted_workers().map(|(wt, w)| (wt, f(w))))
    }

    /// Reduces an arbitrary weighted item list under the federation's
    /// aggregation rule — for staleness-aware hooks whose inputs mix live
    /// worker state with server-side snapshots and custom (age-discounted)
    /// weights.
    pub fn aggregate<'b, I>(&self, items: I) -> Vector
    where
        I: IntoIterator<Item = (f64, &'b Vector)>,
    {
        self.aggregator.aggregate(items)
    }

    /// Fused form of [`EdgeView::average`] + the Eq. 7 momentum lookahead:
    /// returns `(m, m + gamma · (m − y_old))` in one batched traversal
    /// (see [`RobustAggregator::aggregate_momentum`]), bitwise identical
    /// to aggregating and then applying clone → subtract → `axpy`.
    pub fn average_momentum<F>(&self, f: F, gamma: f32, y_old: &Vector) -> (Vector, Vector)
    where
        F: Fn(&WorkerState) -> &Vector,
    {
        self.aggregator.aggregate_momentum(
            self.weighted_workers().map(|(wt, w)| (wt, f(w))),
            gamma,
            y_old,
        )
    }

    /// Fused form of [`EdgeView::aggregate`] + the Eq. 7 momentum
    /// lookahead, for staleness-aware hooks carrying custom weights.
    pub fn aggregate_momentum<'b, I>(
        &self,
        items: I,
        gamma: f32,
        y_old: &Vector,
    ) -> (Vector, Vector)
    where
        I: IntoIterator<Item = (f64, &'b Vector)>,
    {
        self.aggregator.aggregate_momentum(items, gamma, y_old)
    }

    /// Applies a closure to every worker under this edge, in local order.
    pub fn for_workers<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut WorkerState),
    {
        for w in self.workers.iter_mut() {
            f(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> FlState {
        let h = Hierarchy::new(vec![2, 1]);
        let w = Weights::from_samples(&h, &[10, 30, 20]);
        FlState::new(h, w, &Vector::from(vec![1.0, 2.0]))
    }

    #[test]
    fn subtree_weights_are_finite_and_sum_to_one_per_parent() {
        use hieradmo_topology::{TierSpec, TierTree};
        // Depth 4, 2 regions x 2 edges x 1 worker, heavily skewed data:
        // one worker owns almost everything. The division in
        // `subtree_weight` is guarded structurally — `Weights` rejects
        // zero-sample edges, so no parent share can reach 0 — and this
        // pins that invariant: every weight is finite and each parent's
        // children sum to 1.
        let tree = TierTree::new(vec![
            TierSpec::new(2, 2),
            TierSpec::new(2, 1),
            TierSpec::new(1, 5),
        ])
        .unwrap();
        let h = tree.edge_hierarchy();
        let w = Weights::from_samples(&h, &[1_000_000, 1, 1, 1]);
        let mut s = FlState::new(h, w, &Vector::from(vec![0.0]));
        s.attach_tree(tree.clone());
        for d in 1..tree.levels().len() {
            let fanout = tree.levels()[d - 1].fanout;
            for parent in 0..tree.nodes_at(d - 1) {
                let total: f64 = (parent * fanout..(parent + 1) * fanout)
                    .map(|n| {
                        let wt = s.subtree_weight(d, n);
                        assert!(wt.is_finite() && wt > 0.0, "weight({d}, {n}) = {wt}");
                        wt
                    })
                    .sum();
                assert!(
                    (total - 1.0).abs() < 1e-12,
                    "parent {parent} sums to {total}"
                );
            }
        }
    }

    #[test]
    fn initialization_matches_algorithm_lines_1_and_2() {
        let s = state();
        for w in &s.workers {
            assert_eq!(w.x.as_slice(), &[1.0, 2.0]);
            assert_eq!(w.y, w.x, "y0 = x0");
            assert_eq!(w.v.as_slice(), &[0.0, 0.0]);
        }
        for e in &s.edges {
            assert_eq!(e.x_plus.as_slice(), &[1.0, 2.0]);
            assert_eq!(e.y_plus, e.x_plus, "y0_{{l+}} = x0_{{l+}}");
        }
        assert_eq!(s.cloud.x_plus.as_slice(), &[1.0, 2.0]);
        assert_eq!(s.dim(), 2);
    }

    #[test]
    fn edge_average_respects_data_weights() {
        let mut s = state();
        s.workers[0].x = Vector::from(vec![0.0, 0.0]);
        s.workers[1].x = Vector::from(vec![4.0, 4.0]);
        // Weights within edge 0: 10/40 and 30/40.
        let avg = s.edge_average(0, |w| &w.x);
        assert_eq!(avg.as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn cloud_average_respects_edge_weights() {
        let mut s = state();
        s.edges[0].x_plus = Vector::from(vec![0.0, 0.0]);
        s.edges[1].x_plus = Vector::from(vec![6.0, 6.0]);
        // Edge weights: 40/60 and 20/60.
        let avg = s.cloud_average(|e| &e.x_plus);
        assert_eq!(avg.as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn average_worker_models_is_global_weighted_mean() {
        let mut s = state();
        s.workers[0].x = Vector::from(vec![6.0, 0.0]);
        s.workers[1].x = Vector::from(vec![0.0, 0.0]);
        s.workers[2].x = Vector::from(vec![0.0, 3.0]);
        let avg = s.average_worker_models();
        // worker_in_total: 10/60, 30/60, 20/60.
        assert_eq!(avg.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn reset_accumulators_zeroes() {
        let mut s = state();
        s.workers[0].grad_accum = Vector::from(vec![5.0, 5.0]);
        s.workers[0].y_accum = Vector::from(vec![7.0, 7.0]);
        s.workers[0].v_accum = Vector::from(vec![3.0, 3.0]);
        s.workers[0].reset_accumulators();
        assert_eq!(s.workers[0].grad_accum.as_slice(), &[0.0, 0.0]);
        assert_eq!(s.workers[0].y_accum.as_slice(), &[0.0, 0.0]);
        assert_eq!(s.workers[0].v_accum.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn for_edge_workers_touches_only_that_edge() {
        let mut s = state();
        s.for_edge_workers(0, |w| w.x = Vector::from(vec![9.0, 9.0]));
        assert_eq!(s.workers[0].x.as_slice(), &[9.0, 9.0]);
        assert_eq!(s.workers[1].x.as_slice(), &[9.0, 9.0]);
        assert_eq!(s.workers[2].x.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn edge_view_exposes_exactly_one_edge() {
        let mut s = state();
        {
            let mut view = s.edge_view(0);
            assert_eq!(view.edge(), 0);
            assert_eq!(view.num_workers(), 2);
            // In-edge weights of edge 0: 10/40 and 30/40.
            assert!((view.worker_weight(0) - 0.25).abs() < 1e-12);
            assert!((view.worker_weight(1) - 0.75).abs() < 1e-12);
            view.for_workers(|w| w.x = Vector::from(vec![8.0, 8.0]));
        }
        assert_eq!(s.workers[0].x.as_slice(), &[8.0, 8.0]);
        assert_eq!(s.workers[1].x.as_slice(), &[8.0, 8.0]);
        assert_eq!(s.workers[2].x.as_slice(), &[1.0, 2.0]);
        // Second edge holds one worker with full weight.
        let view = s.edge_view(1);
        assert_eq!(view.num_workers(), 1);
        assert!((view.worker_weight(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_view_average_matches_edge_average() {
        let mut s = state();
        s.workers[0].x = Vector::from(vec![0.0, 0.0]);
        s.workers[1].x = Vector::from(vec![4.0, 4.0]);
        let via_state = s.edge_average(0, |w| &w.x);
        let via_view = s.edge_view(0).average(|w| &w.x);
        assert_eq!(via_state, via_view);
    }
}
