//! Run configuration: the paper's hyper-parameters in one struct.

use hieradmo_netsim::AdversaryPlan;
use hieradmo_topology::{ChurnPlan, TierTree};
use serde::{Deserialize, Serialize};

use crate::population::ClientSampling;
use crate::robust::RobustAggregator;

/// Hyper-parameters of one federated training run.
///
/// Defaults follow the paper's Section V-A: `η = 0.01`, `γ = γℓ = 0.5`,
/// batch size 64, and the convex-model three-tier schedule `τ = 10, π = 2`.
///
/// # Example
///
/// ```
/// use hieradmo_core::RunConfig;
///
/// let cfg = RunConfig { tau: 20, pi: 2, total_iters: 2000, ..RunConfig::default() };
/// assert_eq!(cfg.eta, 0.01);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Worker learning rate `η`.
    pub eta: f32,
    /// Worker momentum factor `γ`.
    pub gamma: f32,
    /// Edge momentum factor `γℓ` for fixed-momentum variants
    /// (HierAdMo adapts it online and ignores this field).
    pub gamma_edge: f32,
    /// Worker–edge aggregation period `τ`.
    pub tau: usize,
    /// Edge–cloud aggregation period `π` (in edge aggregations).
    pub pi: usize,
    /// Total local iterations `T` (must be a multiple of `τ·π`).
    pub total_iters: usize,
    /// Mini-batch size per local step.
    pub batch_size: usize,
    /// Evaluate the global model every this many iterations (and always at
    /// `t = T`).
    pub eval_every: usize,
    /// Master seed controlling data order and any stochastic algorithm
    /// choices. Model initialization is seeded separately by the caller.
    pub seed: u64,
    /// Number of execution-engine threads (including the caller's thread).
    ///
    /// `Some(n)` pins the worker pool to exactly `n` threads; `None` uses
    /// all available cores. Results are bitwise identical for every thread
    /// count — the engine chunks work in a fixed order — so this knob only
    /// trades wall-clock for cores. (This supersedes the removed boolean
    /// `parallel` flag; legacy configs carrying that field still
    /// deserialize, the unknown key is simply ignored.)
    #[serde(default)]
    pub threads: Option<usize>,
    /// Cap on the number of *training* samples used for the train-loss
    /// estimate at evaluation points (keeps evaluation cheap).
    pub train_eval_cap: usize,
    /// Failure injection: per-tick probability that a worker *drops* its
    /// local step (straggler/crash emulation). The dropped worker keeps
    /// its stale state and still participates in aggregations, matching
    /// synchronous FL with best-effort clients. `0.0` (default) disables
    /// injection and is bit-identical to a fault-free run.
    pub dropout: f64,
    /// Optional gradient clipping: worker mini-batch gradients are scaled
    /// down to this ℓ2 norm when they exceed it. `None` (default) matches
    /// the paper (no clipping); useful as a stabilizer in the
    /// large-momentum regimes where fixed γℓ diverges (see the
    /// Fig. 2(i)–(k) measurements in `EXPERIMENTS.md`).
    pub clip_norm: Option<f32>,
    /// The aggregation rule every child reduction (worker → edge and
    /// edge → cloud, model and momentum alike) routes through. The default
    /// ([`RobustAggregator::Mean`]) is the paper's data-weighted mean and
    /// keeps runs bitwise identical to configs that predate this field.
    #[serde(default)]
    pub aggregator: RobustAggregator,
    /// Which workers are Byzantine and what each one does to its uploads.
    /// The empty plan (default) corrupts nothing, draws nothing, and is
    /// bitwise identical to a run without adversary injection. Adversary
    /// RNG streams derive from [`RunConfig::seed`], so the same poisoned
    /// trajectory replays under any network timing seed.
    #[serde(default)]
    pub adversary: AdversaryPlan,
    /// Per-round client sampling policy for virtual-population runs
    /// ([`crate::population::run_virtual`]). The default
    /// ([`ClientSampling::Full`]) is today's full participation; classic
    /// [`crate::driver::run`] ignores this field entirely, so legacy
    /// configs (which predate it) deserialize and behave unchanged.
    #[serde(default)]
    pub sampling: ClientSampling,
    /// Deterministic topology churn for elastic runs
    /// ([`crate::elastic::run_elastic`]). The empty plan (default) freezes
    /// the tree and is bitwise identical to runs that predate this field;
    /// the frozen-tree entry points ([`crate::driver::run`] and friends)
    /// reject a non-empty plan and point at the elastic runner.
    #[serde(default)]
    pub churn: ChurnPlan,
    /// **Deprecated.** Edge-server count from seed-era flat configs that
    /// embedded the topology in the run config. Topology now lives in a
    /// [`hieradmo_topology::TierTree`] passed alongside the config; when
    /// both legacy fields are present, [`RunConfig::legacy_tier_tree`]
    /// maps them onto the equivalent depth-3 tree. Never re-serialized
    /// intent: leave `None` in new configs.
    #[serde(default)]
    pub edges: Option<usize>,
    /// **Deprecated.** Workers-per-edge count from seed-era flat configs;
    /// see [`RunConfig::edges`].
    #[serde(default)]
    pub workers_per_edge: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            eta: 0.01,
            gamma: 0.5,
            gamma_edge: 0.5,
            tau: 10,
            pi: 2,
            total_iters: 1000,
            batch_size: 64,
            eval_every: 50,
            seed: 0,
            threads: None,
            train_eval_cap: 512,
            dropout: 0.0,
            clip_norm: None,
            aggregator: RobustAggregator::default(),
            adversary: AdversaryPlan::none(),
            sampling: ClientSampling::Full,
            churn: ChurnPlan::none(),
            edges: None,
            workers_per_edge: None,
        }
    }
}

impl RunConfig {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message if `η ≤ 0`, momentum factors are
    /// outside `[0, 1)`, any period is zero, or `T` is not a multiple of
    /// `τ·π`.
    pub fn validate(&self) -> Result<(), String> {
        if self.eta <= 0.0 || !self.eta.is_finite() {
            return Err(format!("eta must be positive, got {}", self.eta));
        }
        if !(0.0..1.0).contains(&self.gamma) {
            return Err(format!("gamma must be in [0,1), got {}", self.gamma));
        }
        if !(0.0..1.0).contains(&self.gamma_edge) {
            return Err(format!(
                "gamma_edge must be in [0,1), got {}",
                self.gamma_edge
            ));
        }
        if self.tau == 0 || self.pi == 0 || self.total_iters == 0 {
            return Err("tau, pi and total_iters must be positive".into());
        }
        if !self.total_iters.is_multiple_of(self.tau * self.pi) {
            return Err(format!(
                "total_iters = {} is not a multiple of tau*pi = {}",
                self.total_iters,
                self.tau * self.pi
            ));
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.eval_every == 0 {
            return Err("eval_every must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.dropout) {
            return Err(format!("dropout must be in [0,1], got {}", self.dropout));
        }
        if let Some(clip) = self.clip_norm {
            if clip <= 0.0 || !clip.is_finite() {
                return Err(format!("clip_norm must be positive and finite, got {clip}"));
            }
        }
        if self.threads == Some(0) {
            return Err("threads must be at least 1 when set".into());
        }
        self.aggregator.validate()?;
        self.adversary.validate()?;
        self.sampling.validate()?;
        self.churn.validate()?;
        self.legacy_tier_tree()?;
        Ok(())
    }

    /// Resolves the execution-engine thread count.
    ///
    /// This is the single place [`RunConfig::threads`] is interpreted; both
    /// the tick-driven engine ([`crate::driver::run`]) and the event-driven
    /// co-simulation runtime (`hieradmo-simrt`) consult it. `Some(n)` pins
    /// the pool to `n` threads; `None` uses the machine's available
    /// parallelism. Always at least 1.
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            Some(n) => n.max(1),
            None => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Maps the deprecated [`RunConfig::edges`] / `workers_per_edge`
    /// fields onto the depth-3 [`TierTree`] they always described:
    /// `[{fanout: edges, interval: pi, Wan}, {fanout: workers_per_edge,
    /// interval: tau, Lan}]`.
    ///
    /// Returns `Ok(None)` when neither legacy field is set (the modern
    /// shape: topology travels separately).
    ///
    /// # Errors
    ///
    /// One legacy field without the other, or a zero count.
    pub fn legacy_tier_tree(&self) -> Result<Option<TierTree>, String> {
        match (self.edges, self.workers_per_edge) {
            (None, None) => Ok(None),
            (Some(edges), Some(wpe)) => {
                if edges == 0 || wpe == 0 {
                    return Err(format!(
                        "legacy edges ({edges}) and workers_per_edge ({wpe}) must be positive"
                    ));
                }
                // Once per process, not per call: configs are re-validated on
                // every run and checkpoint load.
                static NOTE: std::sync::Once = std::sync::Once::new();
                NOTE.call_once(|| {
                    eprintln!(
                        "note: RunConfig fields `edges`/`workers_per_edge` are deprecated; \
                         topology now travels as a TierTree (this config maps to \
                         TierTree::three_tier({edges}, {wpe}, {}, {}))",
                        self.tau, self.pi
                    );
                });
                Ok(Some(TierTree::three_tier(edges, wpe, self.tau, self.pi)))
            }
            _ => Err(
                "legacy fields edges and workers_per_edge must be set together or not at all"
                    .into(),
            ),
        }
    }

    /// The two-tier counterpart of this config under the paper's fairness
    /// rule: aggregation period `τ·π`, `π = 1`, all else unchanged.
    pub fn two_tier_equivalent(&self) -> RunConfig {
        RunConfig {
            tau: self.tau * self.pi,
            pi: 1,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let cfg = RunConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.eta, 0.01);
        assert_eq!(cfg.gamma, 0.5);
        assert_eq!(cfg.batch_size, 64);
    }

    #[test]
    fn rejects_bad_values() {
        let bad = |f: &dyn Fn(&mut RunConfig)| {
            let mut c = RunConfig::default();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(&|c| c.eta = 0.0));
        assert!(bad(&|c| c.gamma = 1.0));
        assert!(bad(&|c| c.gamma_edge = -0.1));
        assert!(bad(&|c| c.total_iters = 1001));
        assert!(bad(&|c| c.batch_size = 0));
        assert!(bad(&|c| c.clip_norm = Some(0.0)));
        assert!(bad(&|c| c.clip_norm = Some(f32::NAN)));
        assert!(bad(
            &|c| c.aggregator = RobustAggregator::TrimmedMean { trim_ratio: 0.5 }
        ));
        assert!(bad(&|c| {
            c.adversary = AdversaryPlan::uniform(
                [0],
                hieradmo_netsim::AttackModel::SignFlip { scale: f32::NAN },
            );
        }));
    }

    #[test]
    fn legacy_configs_without_robustness_fields_deserialize_to_defaults() {
        // A config serialized before the robustness layer existed carries
        // neither `aggregator` nor `adversary`; it must deserialize to the
        // identity defaults (plain mean, no adversaries).
        let json = serde_json::to_string(&RunConfig::default()).unwrap();
        // `aggregator` and `adversary` are the struct's last two fields:
        // drop everything from `,"aggregator"` on and re-close the object.
        let cut = json
            .find(",\"aggregator\"")
            .expect("serialized config must contain the aggregator field");
        let legacy = format!("{}}}", &json[..cut]);
        let back: RunConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.aggregator, RobustAggregator::Mean);
        assert!(back.adversary.is_empty());
        assert_eq!(back, RunConfig::default());
    }

    #[test]
    fn validate_rejects_bad_sampling_policies() {
        // Zero sample size.
        let cfg = RunConfig {
            sampling: ClientSampling::PerEdge { count: 0 },
            ..RunConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        // Non-finite and out-of-range fractions.
        for fraction in [f64::NAN, f64::INFINITY, 0.0, -0.5, 1.5] {
            let cfg = RunConfig {
                sampling: ClientSampling::Fraction { fraction },
                ..RunConfig::default()
            };
            assert!(
                cfg.validate().is_err(),
                "fraction {fraction} must be rejected"
            );
        }
        // The valid shapes pass.
        for sampling in [
            ClientSampling::Full,
            ClientSampling::Fraction { fraction: 0.01 },
            ClientSampling::Fraction { fraction: 1.0 },
            ClientSampling::PerEdge { count: 5 },
        ] {
            let cfg = RunConfig {
                sampling,
                ..RunConfig::default()
            };
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn legacy_configs_without_sampling_field_deserialize_to_full_participation() {
        let json = serde_json::to_string(&RunConfig::default()).unwrap();
        let legacy = json.replace(",\"sampling\":\"Full\"", "");
        assert_ne!(legacy, json, "sampling field must serialize");
        let back: RunConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.sampling, ClientSampling::Full);
        assert_eq!(back, RunConfig::default());
    }

    #[test]
    fn legacy_configs_without_churn_field_deserialize_to_the_frozen_tree() {
        let json = serde_json::to_string(&RunConfig::default()).unwrap();
        let zero = format!(
            ",\"churn\":{}",
            serde_json::to_string(&ChurnPlan::none()).unwrap()
        );
        let legacy = json.replace(&zero, "");
        assert_ne!(legacy, json, "churn field must serialize");
        let back: RunConfig = serde_json::from_str(&legacy).unwrap();
        assert!(back.churn.is_empty());
        assert_eq!(back, RunConfig::default());
    }

    #[test]
    fn churn_plan_validation_is_part_of_config_validation() {
        use hieradmo_topology::{ScheduledEvent, TopologyEvent};
        let cfg = RunConfig {
            churn: ChurnPlan {
                events: vec![ScheduledEvent {
                    round: 0,
                    event: TopologyEvent::Leave { worker: 0 },
                }],
                reform_every: None,
            },
            ..RunConfig::default()
        };
        assert!(cfg.validate().is_err(), "round-0 churn events are invalid");
    }

    #[test]
    fn legacy_topology_fields_map_to_the_depth_3_tree() {
        use hieradmo_topology::{LinkClass, TierTree};
        // A seed-era config that embedded the topology inline still
        // parses — the deprecated counts are carried as optional fields.
        let json = serde_json::to_string(&RunConfig::default()).unwrap();
        let legacy = json.replace(
            "\"edges\":null,\"workers_per_edge\":null",
            "\"edges\":4,\"workers_per_edge\":8",
        );
        assert_ne!(legacy, json, "expected the legacy keys in the wire form");
        let cfg: RunConfig = serde_json::from_str(&legacy).unwrap();
        cfg.validate().unwrap();
        // ... and pins exactly the depth-3 tree it always described:
        // 4 edges syncing every π cloud-wards, 8 workers each every τ.
        let tree = cfg.legacy_tier_tree().unwrap().unwrap();
        assert_eq!(tree, TierTree::three_tier(4, 8, cfg.tau, cfg.pi));
        assert_eq!(tree.depth(), 3);
        assert_eq!(tree.num_edges(), 4);
        assert_eq!(tree.num_workers(), 32);
        assert_eq!(tree.tau(), cfg.tau);
        assert_eq!(tree.pi_total(), cfg.pi);
        assert_eq!(tree.levels()[0].link_class, LinkClass::Wan);
        assert_eq!(tree.levels()[1].link_class, LinkClass::Lan);
    }

    #[test]
    fn modern_configs_carry_no_legacy_topology() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.legacy_tier_tree().unwrap(), None);
    }

    #[test]
    fn half_specified_legacy_topology_is_rejected() {
        let cfg = RunConfig {
            edges: Some(4),
            ..RunConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("workers_per_edge"));
        let cfg = RunConfig {
            edges: Some(0),
            workers_per_edge: Some(8),
            ..RunConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_zero_tau() {
        let cfg = RunConfig {
            tau: 0,
            ..RunConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("tau"));
    }

    #[test]
    fn rejects_zero_pi() {
        let cfg = RunConfig {
            pi: 0,
            ..RunConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("pi"));
    }

    #[test]
    fn rejects_zero_eval_every() {
        let cfg = RunConfig {
            eval_every: 0,
            ..RunConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("eval_every"));
    }

    #[test]
    fn rejects_dropout_above_one() {
        let cfg = RunConfig {
            dropout: 1.5,
            ..RunConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("dropout"));
    }

    #[test]
    fn rejects_negative_dropout() {
        let cfg = RunConfig {
            dropout: -0.1,
            ..RunConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("dropout"));
    }

    #[test]
    fn zero_threads_is_rejected() {
        let cfg = RunConfig {
            threads: Some(0),
            ..RunConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn resolved_threads_covers_all_combinations() {
        // Explicit `threads` pins the pool (clamped to at least 1).
        let mut cfg = RunConfig {
            threads: Some(3),
            ..RunConfig::default()
        };
        assert_eq!(cfg.resolved_threads(), 3);
        cfg.threads = Some(1);
        assert_eq!(cfg.resolved_threads(), 1);
        // `threads = None` → all available cores.
        cfg.threads = None;
        assert!(cfg.resolved_threads() >= 1);
    }

    #[test]
    fn legacy_configs_with_the_removed_parallel_flag_still_deserialize() {
        // Serialized checkpoints from before the boolean flag was removed
        // carry `"parallel"` — the deserializer must ignore the unknown
        // field rather than reject the config.
        let json = serde_json::to_string(&RunConfig::default()).unwrap();
        let legacy = json.replacen('{', "{\"parallel\":false,", 1);
        let cfg: RunConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(cfg, RunConfig::default());
    }

    #[test]
    fn two_tier_equivalent_folds_pi() {
        let three = RunConfig {
            tau: 10,
            pi: 2,
            ..RunConfig::default()
        };
        let two = three.two_tier_equivalent();
        assert_eq!(two.tau, 20);
        assert_eq!(two.pi, 1);
        two.validate().unwrap();
    }
}
