//! Communication compression — the paper's cited follow-on direction
//! (ref. \[8\], *Hierarchical federated learning with quantization*).
//!
//! Three standard lossy compressors for model/update uplinks, plus error
//! feedback:
//!
//! - [`Compression::TopK`] — keep the `k` largest-magnitude coordinates;
//! - [`Compression::RandomK`] — keep `k` random coordinates (unbiased when
//!   rescaled, here kept plain for simplicity and paired with error
//!   feedback);
//! - [`Compression::Uniform`] — `b`-bit uniform scalar quantization over
//!   the vector's observed range;
//! - [`ErrorFeedback`] — residual accumulation so compression error is
//!   re-injected next round instead of lost (Seide et al. / Karimireddy
//!   et al. style).
//!
//! [`QuantizedHierFavg`] wires a compressor into hierarchical FedAvg's
//! worker→edge uplink, making the accuracy-vs-bytes trade-off measurable
//! end-to-end (see the `compression` experiment binary).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hieradmo_tensor::Vector;

use crate::state::{EdgeView, FlState, WorkerState};
use crate::strategy::{Strategy, Tier};

/// A lossy vector compressor for federated uplinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compression {
    /// No compression (identity); wire size is the dense payload.
    None,
    /// Keep the `k` largest-magnitude coordinates.
    TopK {
        /// Number of coordinates kept.
        k: usize,
    },
    /// Keep `k` uniformly random coordinates (seeded per round).
    RandomK {
        /// Number of coordinates kept.
        k: usize,
    },
    /// Uniform scalar quantization with the given bit width (1..=16).
    Uniform {
        /// Bits per coordinate.
        bits: u8,
    },
}

/// The wire form of a compressed vector.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedVector {
    dim: usize,
    repr: Repr,
}

#[derive(Debug, Clone, PartialEq)]
enum Repr {
    Dense(Vec<f32>),
    Sparse {
        indices: Vec<u32>,
        values: Vec<f32>,
    },
    Quantized {
        min: f32,
        step: f32,
        bits: u8,
        codes: Vec<u16>,
    },
}

impl Compression {
    /// Compresses `v`. `round` seeds the random sparsifier so both ends of
    /// a link could reproduce the mask.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k > v.len()`, or `bits ∉ 1..=16`.
    pub fn compress(&self, v: &Vector, round: u64) -> CompressedVector {
        let dim = v.len();
        let repr = match *self {
            Compression::None => Repr::Dense(v.as_slice().to_vec()),
            Compression::TopK { k } => {
                assert!(k > 0 && k <= dim, "top-k needs 0 < k <= dim, got {k}");
                let mut order: Vec<u32> = (0..dim as u32).collect();
                order.sort_by(|&a, &b| v[b as usize].abs().total_cmp(&v[a as usize].abs()));
                let mut indices: Vec<u32> = order[..k].to_vec();
                indices.sort_unstable();
                let values = indices.iter().map(|&i| v[i as usize]).collect();
                Repr::Sparse { indices, values }
            }
            Compression::RandomK { k } => {
                assert!(k > 0 && k <= dim, "random-k needs 0 < k <= dim, got {k}");
                let mut rng = StdRng::seed_from_u64(round);
                let mut picked = std::collections::BTreeSet::new();
                while picked.len() < k {
                    picked.insert(rng.gen_range(0..dim as u32));
                }
                let indices: Vec<u32> = picked.into_iter().collect();
                let values = indices.iter().map(|&i| v[i as usize]).collect();
                Repr::Sparse { indices, values }
            }
            Compression::Uniform { bits } => {
                assert!((1..=16).contains(&bits), "bits must be 1..=16, got {bits}");
                let min = v.iter().cloned().fold(f32::INFINITY, f32::min);
                let max = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let levels = (1u32 << bits) - 1;
                let step = if max > min {
                    (max - min) / levels as f32
                } else {
                    0.0
                };
                let codes = v
                    .iter()
                    .map(|&x| {
                        if step == 0.0 {
                            0
                        } else {
                            (((x - min) / step).round() as u32).min(levels) as u16
                        }
                    })
                    .collect();
                Repr::Quantized {
                    min,
                    step,
                    bits,
                    codes,
                }
            }
        };
        CompressedVector { dim, repr }
    }

    /// Compresses with error feedback: `residual` carries the accumulated
    /// compression error, which is added to the input before compressing
    /// and refreshed with the new error afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `residual.len() != v.len()` or on the same conditions as
    /// [`Compression::compress`].
    pub fn compress_with_feedback(
        &self,
        v: &Vector,
        residual: &mut Vector,
        round: u64,
    ) -> CompressedVector {
        assert_eq!(residual.len(), v.len(), "residual length mismatch");
        let corrected = v + residual;
        let compressed = self.compress(&corrected, round);
        let reconstructed = compressed.decompress();
        *residual = &corrected - &reconstructed;
        compressed
    }
}

impl CompressedVector {
    /// Reconstructs the (lossy) dense vector.
    pub fn decompress(&self) -> Vector {
        match &self.repr {
            Repr::Dense(values) => Vector::from(values.clone()),
            Repr::Sparse { indices, values } => {
                let mut out = Vector::zeros(self.dim);
                for (&i, &x) in indices.iter().zip(values) {
                    out[i as usize] = x;
                }
                out
            }
            Repr::Quantized {
                min, step, codes, ..
            } => codes.iter().map(|&c| min + step * f32::from(c)).collect(),
        }
    }

    /// Wire size in bytes (what a link would actually carry).
    pub fn wire_bytes(&self) -> u64 {
        let body = match &self.repr {
            Repr::Dense(values) => values.len() * 4,
            Repr::Sparse { indices, values } => indices.len() * 4 + values.len() * 4,
            Repr::Quantized { bits, codes, .. } => {
                8 + (codes.len() * usize::from(*bits)).div_ceil(8)
            }
        };
        (body + 12) as u64 // frame header, matching netsim::payload
    }

    /// Original (dense) dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// Error-feedback residual state, one per compressed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorFeedback {
    residual: Vector,
}

impl ErrorFeedback {
    /// Fresh zero residual of the given dimension.
    pub fn new(dim: usize) -> Self {
        ErrorFeedback {
            residual: Vector::zeros(dim),
        }
    }

    /// Compress-with-feedback through this state.
    pub fn compress(
        &mut self,
        compression: Compression,
        v: &Vector,
        round: u64,
    ) -> CompressedVector {
        compression.compress_with_feedback(v, &mut self.residual, round)
    }

    /// Current residual magnitude (diagnostic).
    pub fn residual_norm(&self) -> f32 {
        self.residual.norm()
    }
}

/// Hierarchical FedAvg with a compressed worker→edge uplink: each worker's
/// round *update* `x_i − x_edge` is compressed (with per-worker error
/// feedback held in `WorkerState::v`, unused by plain FedAvg) before the
/// edge averages and applies it.
///
/// This is the measurement vehicle for the accuracy-vs-bytes trade-off;
/// the cloud tier is left uncompressed (edge→cloud links are wired in the
/// paper's testbed).
#[derive(Debug, Clone)]
pub struct QuantizedHierFavg {
    eta: f32,
    compression: Compression,
}

impl QuantizedHierFavg {
    /// Creates the compressed variant.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0`.
    pub fn new(eta: f32, compression: Compression) -> Self {
        assert!(eta > 0.0, "eta must be positive, got {eta}");
        QuantizedHierFavg { eta, compression }
    }

    /// The configured compressor.
    pub fn compression(&self) -> Compression {
        self.compression
    }
}

impl Strategy for QuantizedHierFavg {
    fn name(&self) -> &'static str {
        match self.compression {
            Compression::None => "QHierFAVG(none)",
            Compression::TopK { .. } => "QHierFAVG(top-k)",
            Compression::RandomK { .. } => "QHierFAVG(rand-k)",
            Compression::Uniform { .. } => "QHierFAVG(uniform)",
        }
    }

    fn tier(&self) -> Tier {
        Tier::Three
    }

    fn local_step(
        &self,
        _t: usize,
        worker: &mut WorkerState,
        grad: &mut dyn FnMut(&Vector, &mut Vector),
    ) {
        let mut g = std::mem::take(&mut worker.scratch);
        grad(&worker.x, &mut g);
        worker.x.axpy(-self.eta, &g);
        worker.scratch = g;
    }

    fn edge_aggregate(&self, k: usize, view: &mut EdgeView<'_>) {
        let x_edge_prev = view.state.x_plus.clone();
        // Compress each worker's update against the last edge model, with
        // per-worker error feedback living in the otherwise-unused `v`.
        let mut updates = Vec::with_capacity(view.num_workers());
        for j in 0..view.num_workers() {
            let weight = view.worker_weight(j);
            let w = &mut view.workers[j];
            let update = &w.x - &x_edge_prev;
            let compressed = self
                .compression
                .compress_with_feedback(&update, &mut w.v, k as u64);
            updates.push((weight, compressed.decompress()));
        }
        let avg_update = Vector::weighted_average(updates.iter().map(|(wgt, u)| (*wgt, u)));
        let mut x_new = x_edge_prev;
        x_new += &avg_update;
        view.state.x_plus = x_new.clone();
        view.for_workers(|w| w.x = x_new.clone());
    }

    fn cloud_aggregate(&self, _p: usize, state: &mut FlState) {
        let avg = state.cloud_average(|e| &e.x_plus);
        state.cloud.x_plus = avg.clone();
        for e in &mut state.edges {
            e.x_plus = avg.clone();
        }
        state.for_all_workers(|w| w.x = avg.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vector {
        Vector::from(vec![0.5, -3.0, 0.1, 2.0, -0.2, 0.0, 1.5, -0.8])
    }

    #[test]
    fn none_round_trips_exactly() {
        let v = sample();
        let c = Compression::None.compress(&v, 0);
        assert_eq!(c.decompress(), v);
        assert_eq!(c.wire_bytes(), (8 * 4 + 12) as u64);
        assert_eq!(c.dim(), 8);
    }

    #[test]
    fn top_k_keeps_largest_magnitudes() {
        let v = sample();
        let c = Compression::TopK { k: 3 }.compress(&v, 0);
        let d = c.decompress();
        // Largest |values| are -3.0, 2.0, 1.5.
        assert_eq!(d.as_slice(), &[0.0, -3.0, 0.0, 2.0, 0.0, 0.0, 1.5, 0.0]);
        assert!(c.wire_bytes() < Compression::None.compress(&v, 0).wire_bytes());
    }

    #[test]
    fn random_k_is_reproducible_per_round() {
        let v = sample();
        let a = Compression::RandomK { k: 4 }.compress(&v, 7);
        let b = Compression::RandomK { k: 4 }.compress(&v, 7);
        let c = Compression::RandomK { k: 4 }.compress(&v, 8);
        assert_eq!(a, b);
        assert_ne!(a, c, "different rounds should pick different masks");
        // Kept coordinates are exact.
        let d = a.decompress();
        let kept = d.iter().filter(|&&x| x != 0.0).count();
        assert!(kept <= 4);
    }

    #[test]
    fn uniform_quantization_error_is_bounded_by_half_step() {
        let v = sample();
        for bits in [2u8, 4, 8, 16] {
            let c = Compression::Uniform { bits }.compress(&v, 0);
            let d = c.decompress();
            let range = 2.0 - (-3.0f32);
            let step = range / ((1u32 << bits) - 1) as f32;
            for (orig, rec) in v.iter().zip(d.iter()) {
                assert!(
                    (orig - rec).abs() <= step / 2.0 + 1e-5,
                    "{bits}-bit error {} exceeds step/2 {}",
                    (orig - rec).abs(),
                    step / 2.0
                );
            }
        }
    }

    #[test]
    fn more_bits_cost_more_bytes_but_less_error() {
        let v = sample();
        let c2 = Compression::Uniform { bits: 2 }.compress(&v, 0);
        let c8 = Compression::Uniform { bits: 8 }.compress(&v, 0);
        assert!(c2.wire_bytes() <= c8.wire_bytes());
        let err = |c: &CompressedVector| v.distance(&c.decompress());
        assert!(err(&c8) <= err(&c2));
    }

    #[test]
    fn constant_vector_quantizes_exactly() {
        let v = Vector::filled(5, 3.25);
        let c = Compression::Uniform { bits: 4 }.compress(&v, 0);
        assert_eq!(c.decompress(), v);
    }

    #[test]
    fn error_feedback_recovers_dropped_mass() {
        // With top-1 compression, a constant stream's small coordinates
        // are dropped — but with feedback the residual grows until every
        // coordinate eventually transmits.
        let v = Vector::from(vec![1.0, 0.4, 0.3]);
        let comp = Compression::TopK { k: 1 };
        let mut fb = ErrorFeedback::new(3);
        let mut delivered = Vector::zeros(3);
        for round in 0..12 {
            let c = fb.compress(comp, &v, round);
            delivered += &c.decompress();
        }
        // Without feedback only coordinate 0 ever transmits; with feedback
        // the total delivered per coordinate approaches 12·v.
        for i in 0..3 {
            let expected = 12.0 * v[i];
            assert!(
                (delivered[i] - expected).abs() < 1.2,
                "coordinate {i}: delivered {} vs expected {expected}",
                delivered[i]
            );
        }
    }

    #[test]
    fn quantized_hierfavg_learns() {
        use crate::algorithms::testutil::{quick_cfg, quick_run};
        use hieradmo_topology::Hierarchy;
        let algo = QuantizedHierFavg::new(0.05, Compression::TopK { k: 20 });
        let res = quick_run(&algo, Hierarchy::balanced(2, 2), quick_cfg());
        assert!(
            res.curve.final_accuracy().unwrap() > 0.5,
            "compressed FL should still learn"
        );
    }

    #[test]
    fn uncompressed_variant_matches_hierfavg() {
        use crate::algorithms::testutil::{quick_cfg, quick_run};
        use crate::algorithms::HierFavg;
        use hieradmo_topology::Hierarchy;
        let q = quick_run(
            &QuantizedHierFavg::new(0.05, Compression::None),
            Hierarchy::balanced(2, 2),
            quick_cfg(),
        );
        let h = quick_run(&HierFavg::new(0.05), Hierarchy::balanced(2, 2), quick_cfg());
        // Identity compression of x − x_edge then re-adding is exact up to
        // float rounding.
        for (a, b) in q.curve.points().iter().zip(h.curve.points()) {
            assert!((a.test_accuracy - b.test_accuracy).abs() < 0.02);
        }
    }

    #[test]
    #[should_panic(expected = "top-k needs")]
    fn top_k_zero_panics() {
        let _ = Compression::TopK { k: 0 }.compress(&sample(), 0);
    }

    #[test]
    #[should_panic(expected = "bits must be")]
    fn zero_bits_panics() {
        let _ = Compression::Uniform { bits: 0 }.compress(&sample(), 0);
    }
}
