//! HierAdMo — *Hierarchical Federated Learning with Adaptive Momentum in
//! Multi-Tier Networks* (ICDCS 2023) — and every baseline from the paper's
//! evaluation, on one simulation engine.
//!
//! # Architecture
//!
//! - [`config::RunConfig`] — hyper-parameters (`η`, `γ`, `γℓ`, `τ`, `π`,
//!   `T`, batch size, seeds).
//! - [`state::FlState`] — the complete state of a three-tier federation:
//!   per-worker model/momentum vectors and accumulators, per-edge momenta,
//!   cloud aggregates.
//! - [`strategy::Strategy`] — the hook interface an algorithm implements:
//!   `local_step` (every iteration), `edge_aggregate` (every `τ`),
//!   `cloud_aggregate` (every `τ·π`).
//! - [`driver`] — walks the [`hieradmo_topology::Schedule`] on a
//!   persistent scoped worker pool (see [`config::RunConfig::threads`]),
//!   fires aggregation hooks, and records a
//!   [`hieradmo_metrics::ConvergenceCurve`] plus per-phase timings.
//! - [`algorithms`] — **HierAdMo** (Algorithm 1) with adaptive or fixed
//!   `γℓ` (the fixed variant is the paper's HierAdMo-R), the three-tier
//!   baselines HierFAVG and CFL, and the two-tier baselines FedAvg, FedNAG,
//!   FedMom, SlowMo, Mime, FastSlowMo and FedADC.
//! - [`theory`] — the convergence-bound functions `h(x, δℓ)`, `s(τ)`,
//!   `j(τ, π, δℓ, δ)` of Theorems 1–4 plus empirical estimators for `β`,
//!   `ρ` and the gradient-divergence `δ`.
//! - [`virtual_update`] — the paper's two-level *virtual update* sequences
//!   (Eqs. 8–15), used to verify Theorem 1 empirically.
//!
//! # Example
//!
//! ```
//! use hieradmo_core::algorithms::HierAdMo;
//! use hieradmo_core::config::RunConfig;
//! use hieradmo_core::driver::run;
//! use hieradmo_data::partition::iid_partition;
//! use hieradmo_data::synthetic::SyntheticDataset;
//! use hieradmo_models::zoo;
//! use hieradmo_topology::Hierarchy;
//!
//! let tt = SyntheticDataset::mnist_like(8, 4, 1);
//! let hierarchy = Hierarchy::balanced(2, 2);
//! let shards = iid_partition(&tt.train, 4, 1);
//! let model = zoo::logistic_regression(&tt.train, 1);
//! let cfg = RunConfig { tau: 5, pi: 2, total_iters: 20, eval_every: 10, ..RunConfig::default() };
//! let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
//! let result = run(&algo, &model, &hierarchy, &shards, &tt.test, &cfg)?;
//! assert!(result.curve.final_accuracy().is_some());
//! # Ok::<(), hieradmo_core::driver::RunError>(())
//! ```

#![deny(missing_docs)]

pub mod adaptive;
pub mod algorithms;
pub mod byzantine;
pub mod checkpoint;
pub mod compression;
pub mod config;
pub mod driver;
pub mod elastic;
pub mod fleet;
mod pool;
pub mod population;
pub mod robust;
pub mod state;
pub mod strategy;
pub mod theory;
pub mod virtual_update;

pub use checkpoint::{Checkpoint, TrainingSnapshot};
pub use config::RunConfig;
pub use driver::{
    run, run_resumed, run_tiered, run_tiered_resumed, run_tiered_until, run_until, PhaseTimings,
    RunError, RunResult,
};
pub use elastic::{
    apply_churn_boundary, epoch_cuts, epoch_tree, initial_version, remap_adversaries, run_elastic,
    run_elastic_resumed, run_elastic_until,
};
pub use population::{
    run_virtual, run_virtual_tiered, run_virtual_tiered_resumed, run_virtual_tiered_until,
    ClientSampling, CohortSampler, ShardAssignment, StatePool, WorkerPopulation,
};
pub use robust::RobustAggregator;
pub use state::{CloudState, EdgeState, EdgeView, FlState, TierState, WorkerState};
pub use strategy::{
    default_middle_aggregate, default_middle_aggregate_stale, Strategy, Tier, TierScope,
    MIDDLE_AGE_CAP,
};
