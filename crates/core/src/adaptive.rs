//! The paper's online adaptive edge-momentum factor (Eqs. 6–7).
//!
//! At every edge aggregation `k`, edge `ℓ` measures the agreement between
//! what its workers' gradients wanted (`−Σ_t ∇F_{i,ℓ}(x^t)`) and where
//! their momenta actually pointed (`Σ_t y^t_{i,ℓ}`), as a data-weighted
//! cosine. The cosine becomes the edge momentum weight `γℓ`, clamped to
//! `[0, 0.99]`: disagreement (obtuse angle) zeroes the edge momentum,
//! near-perfect agreement caps it just below 1 to avoid divergence.

use hieradmo_tensor::Vector;

/// Maximum admissible edge momentum factor (Eq. 7's 0.99 cap; `γℓ ≥ 1`
/// would diverge).
pub const GAMMA_EDGE_CAP: f32 = 0.99;

/// Eq. (7): maps a measured cosine to the adapted `γℓ`.
///
/// A non-finite cosine — possible only when upstream inputs are poisoned
/// or overflowed, since [`Vector::cosine`] already guards zero/overflow
/// norms — maps to 0 (no edge momentum), *not* to the cap: a NaN fails
/// every ordered comparison, so without the explicit guard it would fall
/// through to the 0.99 branch and hand an adversary maximal amplification.
///
/// ```
/// use hieradmo_core::adaptive::clamp_gamma;
///
/// assert_eq!(clamp_gamma(-0.4), 0.0);   // disagreement → no edge momentum
/// assert_eq!(clamp_gamma(0.6), 0.6);    // agreement → proportional weight
/// assert_eq!(clamp_gamma(0.999), 0.99); // capped below 1
/// assert_eq!(clamp_gamma(f32::NAN), 0.0); // poisoned input → no momentum
/// ```
pub fn clamp_gamma(cos_theta: f32) -> f32 {
    if !cos_theta.is_finite() || cos_theta <= 0.0 {
        0.0
    } else if cos_theta < GAMMA_EDGE_CAP {
        cos_theta
    } else {
        GAMMA_EDGE_CAP
    }
}

/// Eq. (6): the data-weighted cosine between each worker's accumulated
/// *negative* gradient and accumulated momentum:
///
/// `cos θ_{k,ℓ} = Σ_i (D_{i,ℓ}/D_ℓ) · cos(−Σ∇F_{i,ℓ}, Σy_{i,ℓ})`.
///
/// Workers with a (near-)zero accumulator contribute 0, consistent with the
/// convention in [`Vector::cosine`].
///
/// # Panics
///
/// Panics if any pair of vectors has mismatched lengths.
pub fn weighted_cosine<'a, I>(items: I) -> f32
where
    I: IntoIterator<Item = (f64, &'a Vector, &'a Vector)>,
{
    let mut acc = 0.0f64;
    for (weight, grad_accum, y_accum) in items {
        let cos = (-grad_accum).cosine(y_accum);
        acc += weight * f64::from(cos);
    }
    acc as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_matches_eq_7_cases() {
        assert_eq!(clamp_gamma(-1.0), 0.0);
        assert_eq!(clamp_gamma(0.0), 0.0);
        assert_eq!(clamp_gamma(0.5), 0.5);
        assert_eq!(clamp_gamma(0.989), 0.989);
        assert_eq!(clamp_gamma(0.99), 0.99);
        assert_eq!(clamp_gamma(1.0), 0.99);
    }

    #[test]
    fn clamp_stays_in_range_for_poisoned_cosines() {
        // Regression: a NaN cosine fails both ordered comparisons, so the
        // pre-guard code fell through to the 0.99 cap — the *worst* value
        // to hand an adversary. Every pathological input must land in
        // [0, GAMMA_EDGE_CAP], with non-finite inputs pinned to 0.
        assert_eq!(clamp_gamma(f32::NAN), 0.0);
        assert_eq!(clamp_gamma(f32::INFINITY), 0.0);
        assert_eq!(clamp_gamma(f32::NEG_INFINITY), 0.0);
        for cos in [-1e30, -1.0, 0.0, 1e-30, 0.5, 1.0, 1e30] {
            let g = clamp_gamma(cos);
            assert!((0.0..=GAMMA_EDGE_CAP).contains(&g), "cos={cos} -> {g}");
        }
    }

    #[test]
    fn weighted_cosine_of_extreme_norm_vectors_yields_clampable_gamma() {
        // A momentum-poisoning adversary uploads y-accumulators at extreme
        // norms. The cosine path must stay finite (Vector::cosine guards
        // overflowed norms by returning 0) and clamp_gamma must keep the
        // Eq. 7 factor in [0, 0.99].
        let g = Vector::from(vec![1.0, 2.0]);
        for y in [
            Vector::from(vec![f32::MAX, f32::MAX]),
            Vector::from(vec![-f32::MAX, f32::MAX]),
            Vector::from(vec![1e38, -1e38]),
            Vector::zeros(2),
        ] {
            let cos = weighted_cosine([(1.0, &g, &y)]);
            let gamma = clamp_gamma(cos);
            assert!(
                (0.0..=GAMMA_EDGE_CAP).contains(&gamma),
                "y={:?} -> cos={cos}, gamma={gamma}",
                y.as_slice()
            );
        }
    }

    #[test]
    fn weighted_cosine_of_agreeing_momenta_is_one() {
        // Momentum pointing exactly along the descent direction −g.
        let g = Vector::from(vec![1.0, 0.0]);
        let y = Vector::from(vec![-2.0, 0.0]);
        let cos = weighted_cosine([(0.5, &g, &y), (0.5, &g, &y)]);
        assert!((cos - 1.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_cosine_of_opposing_momenta_is_minus_one() {
        let g = Vector::from(vec![1.0, 0.0]);
        let y = Vector::from(vec![3.0, 0.0]); // same direction as g = opposite of −g
        let cos = weighted_cosine([(1.0, &g, &y)]);
        assert!((cos + 1.0).abs() < 1e-6);
        assert_eq!(clamp_gamma(cos), 0.0);
    }

    #[test]
    fn weighted_cosine_mixes_by_data_weight() {
        let g = Vector::from(vec![1.0, 0.0]);
        let agree = Vector::from(vec![-1.0, 0.0]);
        let disagree = Vector::from(vec![1.0, 0.0]);
        // 75% of the data agrees, 25% disagrees: cos = 0.75 - 0.25 = 0.5.
        let cos = weighted_cosine([(0.75, &g, &agree), (0.25, &g, &disagree)]);
        assert!((cos - 0.5).abs() < 1e-6);
    }

    #[test]
    fn zero_accumulators_contribute_zero() {
        let z = Vector::zeros(3);
        let y = Vector::from(vec![1.0, 2.0, 3.0]);
        assert_eq!(weighted_cosine([(1.0, &z, &y)]), 0.0);
    }
}
