//! The persistent parallel execution engine.
//!
//! [`Pool`] is a scoped worker pool created once per [`crate::driver::run`]
//! and kept alive for the whole training loop (replacing per-tick
//! spawn/join). The driver checks state *out* of [`crate::state::FlState`]
//! into self-contained job items, ships contiguous fixed-order chunks to
//! the pool over channels, runs the first chunk on the calling thread, and
//! reassembles results by identity (worker index, edge index, eval chunk
//! index) — never by arrival order. Together with per-worker RNG streams
//! and fixed-size evaluation chunks this makes every run bitwise identical
//! for any thread count.

use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::Scope;

use hieradmo_data::{Batcher, Dataset};
use hieradmo_models::{EvalSums, Model};
use hieradmo_tensor::Vector;
use hieradmo_topology::Weights;

use crate::config::RunConfig;
use crate::state::{EdgeState, EdgeView, WorkerState};
use crate::strategy::Strategy;

/// Everything a pool thread needs by reference: the strategy and the
/// run-wide immutable inputs. `Copy` so each job execution can capture it
/// by value.
pub(crate) struct ExecCtx<'a, S: ?Sized> {
    /// The algorithm under execution.
    pub strategy: &'a S,
    /// Run configuration (clipping, batch size, …).
    pub cfg: &'a RunConfig,
    /// Per-worker training shards, flat order.
    pub worker_data: &'a [Dataset],
    /// Data-size weights (an owned copy held by the driver, identical to
    /// `FlState::weights`).
    pub weights: &'a Weights,
    /// Held-out test set for evaluation jobs.
    pub test_data: &'a Dataset,
    /// Capped training probe for evaluation jobs.
    pub train_probe: &'a Dataset,
}

impl<S: ?Sized> Clone for ExecCtx<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S: ?Sized> Copy for ExecCtx<'_, S> {}

/// A worker's checked-out step state: its model replica, its private
/// batcher stream, and a reusable batch-index buffer.
pub(crate) struct StepCtx<M> {
    pub model: M,
    pub batcher: Batcher,
    pub batch: Vec<usize>,
}

/// One worker's local-step work item.
pub(crate) struct StepItem<M> {
    /// Flat worker index (identity for reassembly).
    pub idx: usize,
    pub worker: WorkerState,
    pub ctx: StepCtx<M>,
}

/// One edge's aggregation work item: its workers and edge state, checked
/// out of `FlState`.
pub(crate) struct EdgeItem {
    /// Edge index (identity for reassembly).
    pub edge: usize,
    /// Flat index of the edge's first worker.
    pub offset: usize,
    pub workers: Vec<WorkerState>,
    pub state: EdgeState,
}

/// Which dataset an evaluation chunk reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum EvalTarget {
    Test,
    Probe,
}

/// A fixed-size slice of an evaluation pass. Chunk boundaries depend only
/// on the dataset length (see [`EVAL_CHUNK`]), never on the thread count,
/// so the f64 partial-sum reduction order is invariant.
pub(crate) struct EvalChunk {
    pub target: EvalTarget,
    /// Chunk ordinal within `target` (identity for ordered reduction).
    pub idx: usize,
    pub range: Range<usize>,
}

/// Samples per evaluation chunk, fixed for all thread counts.
pub const EVAL_CHUNK: usize = 256;

/// Work shipped to a pool thread (or run inline on the caller).
pub(crate) enum Job<M> {
    /// Local steps at tick `t` for the contained workers.
    Steps { t: usize, items: Vec<StepItem<M>> },
    /// Edge aggregations `k` for the contained edges.
    Edges { k: usize, items: Vec<EdgeItem> },
    /// Evaluation of `params` over the contained chunks.
    Eval {
        params: Vector,
        chunks: Vec<EvalChunk>,
    },
}

/// The completed counterpart of a [`Job`], carrying state back.
pub(crate) enum Reply<M> {
    Steps(Vec<StepItem<M>>),
    Edges(Vec<EdgeItem>),
    Eval(Vec<(EvalTarget, usize, EvalSums)>),
}

/// Splits `items` into at most `parts` contiguous chunks (first chunks get
/// the extra items). Order within and across chunks follows the input.
pub(crate) fn chunk<T>(items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    if items.is_empty() {
        return Vec::new();
    }
    let parts = parts.clamp(1, items.len());
    let per = items.len().div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(per).collect();
        if c.is_empty() {
            break;
        }
        out.push(c);
    }
    out
}

/// Runs one job to completion. Shared by pool threads and the caller (so
/// `threads = 1` exercises the identical code path with zero spawns).
pub(crate) fn execute<M, S>(ctx: ExecCtx<'_, S>, eval_model: &mut M, job: Job<M>) -> Reply<M>
where
    M: Model,
    S: Strategy + ?Sized,
{
    match job {
        Job::Steps { t, mut items } => {
            for item in &mut items {
                run_step(ctx, t, item);
            }
            Reply::Steps(items)
        }
        Job::Edges { k, mut items } => {
            for item in &mut items {
                let mut view = EdgeView::detached(
                    item.edge,
                    item.offset,
                    &mut item.workers,
                    &mut item.state,
                    ctx.weights,
                    ctx.cfg.aggregator,
                );
                ctx.strategy.edge_aggregate(k, &mut view);
            }
            Reply::Edges(items)
        }
        Job::Eval { params, chunks } => {
            eval_model.set_params(&params);
            let sums = chunks
                .into_iter()
                .map(|c| {
                    let data = match c.target {
                        EvalTarget::Test => ctx.test_data,
                        EvalTarget::Probe => ctx.train_probe,
                    };
                    (c.target, c.idx, eval_model.evaluate_range(data, c.range))
                })
                .collect();
            Reply::Eval(sums)
        }
    }
}

/// One worker's local step: draw the next batch into the reusable buffer,
/// then hand the strategy a gradient hook that reuses the worker's model
/// replica and scratch vector — no per-step heap allocation.
fn run_step<M, S>(ctx: ExecCtx<'_, S>, t: usize, item: &mut StepItem<M>)
where
    M: Model,
    S: Strategy + ?Sized,
{
    let data = &ctx.worker_data[item.idx];
    let step = &mut item.ctx;
    step.batcher.next_batch_into(&mut step.batch);
    let StepCtx { model, batch, .. } = step;
    let clip = ctx.cfg.clip_norm;
    let mut grad_fn = |p: &Vector, out: &mut Vector| {
        model.set_params(p);
        model.loss_and_grad_into(data, batch, out);
        if let Some(max_norm) = clip {
            let norm = out.norm();
            if norm > max_norm {
                out.scale_in_place(max_norm / norm);
            }
        }
    };
    ctx.strategy.local_step(t, &mut item.worker, &mut grad_fn);
}

/// A long-lived pool of `spawned` scoped threads, each holding its own
/// evaluation-model replica and draining jobs from a private channel.
pub(crate) struct Pool<M> {
    senders: Vec<Sender<Job<M>>>,
    reply_rx: Receiver<Reply<M>>,
}

impl<M> Pool<M>
where
    M: Model + Clone + Send,
{
    /// Spawns `spawned` worker threads on `scope` (the caller participates
    /// as thread 0, so the engine runs `spawned + 1` lanes). Dropping the
    /// pool closes the job channels, which ends every worker loop; the
    /// scope then joins them.
    pub(crate) fn new<'env, 'scope, S>(
        scope: &'scope Scope<'scope, 'env>,
        spawned: usize,
        ctx: ExecCtx<'env, S>,
        model: &M,
    ) -> Self
    where
        S: Strategy + ?Sized,
        M: 'env,
    {
        let (reply_tx, reply_rx) = channel();
        let mut senders = Vec::with_capacity(spawned);
        for _ in 0..spawned {
            let (tx, rx) = channel::<Job<M>>();
            let reply_tx = reply_tx.clone();
            let mut eval_model = model.clone();
            scope.spawn(move || {
                while let Ok(job) = rx.recv() {
                    if reply_tx.send(execute(ctx, &mut eval_model, job)).is_err() {
                        break;
                    }
                }
            });
            senders.push(tx);
        }
        Pool { senders, reply_rx }
    }

    /// Executes a batch of jobs: jobs `1..` go to pool threads, job `0`
    /// runs on the calling thread (overlapping with the pool), then all
    /// replies are collected. `jobs.len()` must not exceed the lane count.
    pub(crate) fn exec<S>(
        &self,
        ctx: ExecCtx<'_, S>,
        eval_model: &mut M,
        mut jobs: Vec<Job<M>>,
    ) -> Vec<Reply<M>>
    where
        S: Strategy + ?Sized,
    {
        assert!(
            jobs.len() <= self.senders.len() + 1,
            "more jobs than pool lanes"
        );
        let mut replies = Vec::with_capacity(jobs.len());
        if jobs.is_empty() {
            return replies;
        }
        let main_job = jobs.remove(0);
        let sent = jobs.len();
        for (job, tx) in jobs.into_iter().zip(&self.senders) {
            tx.send(job).expect("pool thread terminated early");
        }
        replies.push(execute(ctx, eval_model, main_job));
        for _ in 0..sent {
            replies.push(self.reply_rx.recv().expect("pool thread terminated early"));
        }
        replies
    }
}
