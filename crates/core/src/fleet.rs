//! Multi-seed experiment orchestration: repeat a run across seeds and
//! summarize — the machinery behind every "mean ± std" cell of Table II.
//!
//! Seeds drive *everything* downstream (data order, batching, any
//! stochastic algorithm choice), so two [`repeat`] calls with the same
//! arguments produce identical summaries.

use hieradmo_data::Dataset;
use hieradmo_metrics::{ConvergenceCurve, MeanStd};
use hieradmo_models::Model;
use hieradmo_topology::Hierarchy;

use crate::config::RunConfig;
use crate::driver::{run, RunError, RunResult};
use crate::strategy::Strategy;

/// Aggregated outcome of repeated seeded runs of one algorithm.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Algorithm name.
    pub algorithm: String,
    /// Final test accuracy across seeds.
    pub accuracy: MeanStd,
    /// Final training loss across seeds.
    pub train_loss: MeanStd,
    /// Every seed's full curve, in seed order.
    pub curves: Vec<ConvergenceCurve>,
}

impl FleetResult {
    /// Iterations to reach `target` accuracy per seed (`None` where a seed
    /// never reached it).
    pub fn iterations_to_accuracy(&self, target: f64) -> Vec<Option<usize>> {
        self.curves
            .iter()
            .map(|c| c.iterations_to_accuracy(target))
            .collect()
    }
}

/// Runs `strategy` once per seed in `seeds`, varying only
/// [`RunConfig::seed`], and summarizes.
///
/// # Errors
///
/// Propagates the first [`RunError`]; an empty `seeds` slice is reported
/// as a bad config.
pub fn repeat<M, S>(
    strategy: &S,
    model: &M,
    hierarchy: &Hierarchy,
    worker_data: &[Dataset],
    test_data: &Dataset,
    base: &RunConfig,
    seeds: &[u64],
) -> Result<FleetResult, RunError>
where
    M: Model + Clone,
    S: Strategy + ?Sized,
{
    if seeds.is_empty() {
        return Err(RunError::BadConfig("need at least one seed".into()));
    }
    let mut results: Vec<RunResult> = Vec::with_capacity(seeds.len());
    for &seed in seeds {
        let cfg = RunConfig {
            seed,
            ..base.clone()
        };
        results.push(run(
            strategy,
            model,
            hierarchy,
            worker_data,
            test_data,
            &cfg,
        )?);
    }
    let accs: Vec<f64> = results
        .iter()
        .map(|r| r.curve.final_accuracy().unwrap_or(0.0))
        .collect();
    let losses: Vec<f64> = results
        .iter()
        .map(|r| r.curve.final_train_loss().unwrap_or(f64::NAN))
        .collect();
    Ok(FleetResult {
        algorithm: strategy.name().to_string(),
        accuracy: MeanStd::of(&accs),
        train_loss: MeanStd::of(&losses),
        curves: results.into_iter().map(|r| r.curve).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{quick_cfg, small_problem};
    use crate::algorithms::HierAdMo;

    #[test]
    fn repeat_summarizes_across_seeds() {
        let (_, test, shards, model) = small_problem(4);
        let h = Hierarchy::balanced(2, 2);
        let cfg = RunConfig {
            total_iters: 100,
            ..quick_cfg()
        };
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let fleet = repeat(&algo, &model, &h, &shards, &test, &cfg, &[0, 1, 2]).unwrap();
        assert_eq!(fleet.curves.len(), 3);
        assert_eq!(fleet.algorithm, "HierAdMo");
        assert!((0.0..=1.0).contains(&fleet.accuracy.mean));
        assert!(fleet.accuracy.std >= 0.0);
        let t = fleet.iterations_to_accuracy(0.5);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn repeat_is_deterministic() {
        let (_, test, shards, model) = small_problem(4);
        let h = Hierarchy::balanced(2, 2);
        let cfg = RunConfig {
            total_iters: 60,
            eval_every: 30,
            ..quick_cfg()
        };
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let a = repeat(&algo, &model, &h, &shards, &test, &cfg, &[7, 8]).unwrap();
        let b = repeat(&algo, &model, &h, &shards, &test, &cfg, &[7, 8]).unwrap();
        assert_eq!(a.curves, b.curves);
        assert_eq!(a.accuracy, b.accuracy);
    }

    #[test]
    fn empty_seed_list_errors() {
        let (_, test, shards, model) = small_problem(4);
        let h = Hierarchy::balanced(2, 2);
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let err = repeat(&algo, &model, &h, &shards, &test, &quick_cfg(), &[]).unwrap_err();
        assert!(matches!(err, RunError::BadConfig(_)));
    }
}
