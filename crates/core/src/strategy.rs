//! The [`Strategy`] trait: the hook interface every federated algorithm
//! implements against the shared [`FlState`].

use hieradmo_tensor::Vector;
use hieradmo_topology::{Hierarchy, TierAggregation};

use crate::state::{EdgeView, FlState, WorkerState};

/// Which architecture an algorithm is defined for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Two-tier (workers ↔ cloud): runs on a degenerate single-edge
    /// hierarchy with `π = 1`.
    Two,
    /// Three-tier (workers ↔ edges ↔ cloud).
    Three,
}

/// The tier a depth-indexed aggregation targets — the argument of
/// [`Strategy::tier_aggregate`].
///
/// On the seed three-tier path only `Edge` and `Root` occur; `Middle`
/// appears on depth ≥ 4 [`hieradmo_topology::TierTree`] runs, once per
/// middle node at that tier's boundary. Edge scopes may be dispatched
/// concurrently (one view per edge, disjoint by construction); middle
/// and root scopes always run serially on the driver thread with the
/// whole federation in reach.
#[derive(Debug)]
pub enum TierScope<'a, 'b> {
    /// The leaf-parent ("edge") tier: one edge's workers and state.
    Edge(&'b mut EdgeView<'a>),
    /// One middle-tier node of a depth ≥ 4 tree.
    Middle {
        /// The node's tree depth (an element of
        /// [`hieradmo_topology::TierTree::middle_depths`]).
        depth: usize,
        /// The node's index within its tier.
        node: usize,
        /// The full federation state (middle hooks run serially).
        state: &'b mut FlState,
    },
    /// The root ("cloud") tier.
    Root(&'b mut FlState),
}

/// A federated-learning algorithm as a set of hooks called by
/// [`crate::driver::run`]:
///
/// 1. [`Strategy::local_step`] once per worker per local iteration
///    (possibly on parallel threads, hence `&self` + `Sync`);
/// 2. [`Strategy::edge_aggregate`] for every edge at `t = kτ`;
/// 3. [`Strategy::cloud_aggregate`] at `t = pτπ`.
///
/// Algorithms keep *all* mutable run state inside [`FlState`]; the strategy
/// object itself only holds hyper-parameters, which keeps every algorithm
/// trivially `Send + Sync`.
///
/// Under the fault-injecting co-simulation (`hieradmo-simrt`, DESIGN.md
/// §11) the same hooks also serve crash/rejoin: a worker that crashed and
/// rejoined re-enters `local_step` from the last model its server
/// delivered, so aggregation hooks may observe contributions whose local
/// trajectory restarted mid-interval. Hooks must therefore not assume
/// every worker's `steps` counter advanced uniformly — only that each
/// upload is internally consistent (state, accumulators, and step count
/// all describe the same locally-executed interval).
pub trait Strategy: Send + Sync {
    /// Display name (matches the paper's Table II row labels).
    fn name(&self) -> &'static str;

    /// The architecture this algorithm is defined for.
    fn tier(&self) -> Tier;

    /// Hook called once before training begins (after [`FlState::new`]'s
    /// common initialization). Most algorithms need nothing extra.
    fn init(&self, _state: &mut FlState) {}

    /// One local iteration on one worker. `grad(params, out)` evaluates the
    /// worker's mini-batch gradient at arbitrary parameters (the batch is
    /// fixed for this call), writing it into `out` — typically the worker's
    /// [`WorkerState::scratch`] buffer, so the steady state allocates
    /// nothing.
    fn local_step(
        &self,
        t: usize,
        worker: &mut WorkerState,
        grad: &mut dyn FnMut(&Vector, &mut Vector),
    );

    /// Edge aggregation `k` (at `t = kτ`) for the edge behind `view`.
    ///
    /// The view scopes the hook to exactly one edge's workers and state, so
    /// the driver may run all edges concurrently; implementations needing
    /// the edge index use [`EdgeView::edge`].
    fn edge_aggregate(&self, k: usize, view: &mut EdgeView<'_>);

    /// Cloud aggregation `p` (at `t = pτπ`).
    fn cloud_aggregate(&self, p: usize, state: &mut FlState);

    /// Staleness-aware edge aggregation, called by relaxed-synchrony
    /// drivers (the event-driven runtime in `hieradmo-simrt` under its
    /// `Deadline`/`AsyncAge` policies) instead of
    /// [`Strategy::edge_aggregate`].
    ///
    /// `staleness[j]` is the number of edge rounds since local worker `j`'s
    /// server-side state was refreshed by an upload: `0` means the worker
    /// participated in this round, larger values mean the edge is merging a
    /// carried-over (stale) model/momentum. The all-zero case **must** be
    /// exactly equivalent to [`Strategy::edge_aggregate`] — the default
    /// implementation guarantees this by delegating unconditionally, which
    /// keeps every synchronous algorithm compiling and semantically
    /// unchanged (stale entries are then merged at full weight).
    fn edge_aggregate_stale(&self, k: usize, view: &mut EdgeView<'_>, staleness: &[usize]) {
        let _ = staleness;
        self.edge_aggregate(k, view);
    }

    /// Staleness-aware cloud aggregation; the edge-level analogue of
    /// [`Strategy::edge_aggregate_stale`]. `staleness[l]` counts cloud
    /// rounds since edge `l` last submitted. Defaults to
    /// [`Strategy::cloud_aggregate`] (stale edges merged at full weight),
    /// so the all-zero case is always equivalent to the synchronous hook.
    fn cloud_aggregate_stale(&self, p: usize, state: &mut FlState, staleness: &[usize]) {
        let _ = staleness;
        self.cloud_aggregate(p, state);
    }

    /// Depth-indexed aggregation dispatch: one hook for every tier of an
    /// N-tier tree. `round` is the firing tier's own aggregation index
    /// (`k` at the edges, `p` at the root, the node tier's round for
    /// middles).
    ///
    /// The default is exactly today's three-tier behavior — edge scopes
    /// delegate to [`Strategy::edge_aggregate`], the root to
    /// [`Strategy::cloud_aggregate`] — so every existing algorithm runs
    /// the N-tier path bitwise identically to the seed code (pinned by
    /// `tests/tier_equivalence.rs`). Middle scopes run
    /// [`default_middle_aggregate`]: subtree-weighted averaging through
    /// the federation's robust aggregator, or a no-op for
    /// [`TierAggregation::Identity`] levels. Override to give an
    /// algorithm genuine per-depth semantics.
    fn tier_aggregate(&self, scope: TierScope<'_, '_>, round: usize) {
        match scope {
            TierScope::Edge(view) => self.edge_aggregate(round, view),
            TierScope::Middle { depth, node, state } => {
                default_middle_aggregate(depth, node, state);
            }
            TierScope::Root(state) => self.cloud_aggregate(round, state),
        }
    }

    /// Staleness-aware variant of [`Strategy::tier_aggregate`], with the
    /// same contract as the edge/cloud stale hooks: all-zero staleness
    /// must be equivalent to the synchronous hook, which the default
    /// guarantees by delegating per scope. For middle scopes `staleness`
    /// is indexed by the node's *local* edge span (its `edges_per_node`
    /// subtree leaves, in order), counting cloud boundaries since that
    /// edge last submitted; the default runs
    /// [`default_middle_aggregate_stale`], which down-weights stale
    /// subtree edges by bounded age (carry-over past
    /// [`MIDDLE_AGE_CAP`] rounds stops decaying further).
    fn tier_aggregate_stale(&self, scope: TierScope<'_, '_>, round: usize, staleness: &[usize]) {
        match scope {
            TierScope::Edge(view) => self.edge_aggregate_stale(round, view, staleness),
            TierScope::Middle { depth, node, state } => {
                default_middle_aggregate_stale(depth, node, state, staleness);
            }
            TierScope::Root(state) => self.cloud_aggregate_stale(round, state, staleness),
        }
    }

    /// The parameters evaluated as "the global model" between aggregations.
    /// Defaults to the data-weighted average of worker models.
    fn global_params(&self, state: &FlState) -> Vector {
        state.average_worker_models()
    }

    /// Validates that the topology matches [`Strategy::tier`].
    ///
    /// # Errors
    ///
    /// Returns a message when a two-tier algorithm is given a multi-edge
    /// hierarchy.
    fn check_topology(&self, hierarchy: &Hierarchy) -> Result<(), String> {
        if self.tier() == Tier::Two && !hierarchy.is_two_tier() {
            return Err(format!(
                "{} is a two-tier algorithm; run it on Hierarchy::two_tier(n) \
                 with pi = 1 (got {} edges)",
                self.name(),
                hierarchy.num_edges()
            ));
        }
        Ok(())
    }
}

/// The stock middle-tier aggregation behind the default
/// [`Strategy::tier_aggregate`]: the paper's cloud rule (Algorithm 1
/// lines 18–19 without server momentum) restricted to one node's
/// subtree.
///
/// For an [`TierAggregation::Average`] level, the node reduces its
/// subtree's edge states — `y_{ℓ−}` and `x_{ℓ+}`, weighted by the
/// subtree-renormalized data shares `D_ℓ / D_subtree` and routed through
/// the federation's [`crate::RobustAggregator`] — stores the result as
/// its own momentum/model, and redistributes both down the subtree
/// (edges' `y_minus`/`x_plus`, workers' `y`/`x`), exactly as the cloud
/// does globally. For [`TierAggregation::Identity`] levels it does
/// nothing at all, which is what makes pass-through tiers collapsible
/// (see [`hieradmo_topology::TierTree::collapse`]).
///
/// # Panics
///
/// Panics if `state` has no attached tier tree or `depth`/`node` are out
/// of range.
pub fn default_middle_aggregate(depth: usize, node: usize, state: &mut FlState) {
    let tree = state
        .tree
        .as_ref()
        .expect("middle aggregation needs a tier tree");
    // The node at `depth` aggregates its children per the spec of the
    // depth → depth+1 relation.
    if tree.levels()[depth].aggregation == TierAggregation::Identity {
        return;
    }
    let span = tree.edges_per_node(depth);
    let edges = node * span..(node + 1) * span;
    let subtree_total: f64 = edges.clone().map(|e| state.weights.edge_in_total(e)).sum();
    let weighted = |l: usize| state.weights.edge_in_total(l) / subtree_total;
    let y = state.aggregate(
        edges
            .clone()
            .map(|l| (weighted(l), &state.edges[l].y_minus)),
    );
    let x = state.aggregate(edges.clone().map(|l| (weighted(l), &state.edges[l].x_plus)));

    let idx = depth - 1;
    state.middle[idx][node].y_minus = y.clone();
    state.middle[idx][node].y_plus = y.clone();
    state.middle[idx][node].x_plus = x.clone();
    for l in edges {
        state.edges[l].y_minus = y.clone();
        state.edges[l].x_plus = x.clone();
    }
    let workers = state.hierarchy.edge_workers(node * span).start
        ..state.hierarchy.edge_workers((node + 1) * span - 1).end;
    for i in workers {
        state.workers[i].y = y.clone();
        state.workers[i].x = x.clone();
    }
}

/// Age bound for middle-tier carry-over: a stale subtree edge is
/// down-weighted by `1 / (1 + min(age, MIDDLE_AGE_CAP))`, so an edge that
/// has been absent longer than this many cloud boundaries keeps a small
/// constant share instead of decaying without bound. This keeps
/// long-partitioned subtrees represented (the HierFAVG carry-over rule)
/// while bounding their drag on fresh contributions.
pub const MIDDLE_AGE_CAP: usize = 16;

/// Staleness-aware variant of [`default_middle_aggregate`], the stock
/// behavior behind [`Strategy::tier_aggregate_stale`]'s middle arm.
///
/// `staleness[j]` is the age (in cloud boundaries) of the node's `j`-th
/// subtree edge, in subtree order. All-zero staleness delegates to
/// [`default_middle_aggregate`] bitwise — the exactness contract the
/// depth×policy matrix pins under `FullSync`. Otherwise each edge's
/// subtree weight `D_ℓ / D_subtree` is scaled by
/// `1 / (1 + min(age_ℓ, MIDDLE_AGE_CAP))` and the weights renormalized
/// over the node's span, so carried-over (stale) edge states still enter
/// the subtree average with bounded influence.
///
/// # Panics
///
/// Panics if `state` has no attached tier tree, `depth`/`node` are out of
/// range, or `staleness` is shorter than the node's subtree span.
pub fn default_middle_aggregate_stale(
    depth: usize,
    node: usize,
    state: &mut FlState,
    staleness: &[usize],
) {
    if staleness.iter().all(|&a| a == 0) {
        return default_middle_aggregate(depth, node, state);
    }
    let tree = state
        .tree
        .as_ref()
        .expect("middle aggregation needs a tier tree");
    if tree.levels()[depth].aggregation == TierAggregation::Identity {
        return;
    }
    let span = tree.edges_per_node(depth);
    assert!(
        staleness.len() >= span,
        "staleness slice covers {} edges, node subtree spans {span}",
        staleness.len()
    );
    let edges = node * span..(node + 1) * span;
    let decay = |j: usize| 1.0 / (1 + staleness[j].min(MIDDLE_AGE_CAP)) as f64;
    let scaled_total: f64 = edges
        .clone()
        .enumerate()
        .map(|(j, e)| state.weights.edge_in_total(e) * decay(j))
        .sum();
    let weighted = |j: usize, l: usize| state.weights.edge_in_total(l) * decay(j) / scaled_total;
    let y = state.aggregate(
        edges
            .clone()
            .enumerate()
            .map(|(j, l)| (weighted(j, l), &state.edges[l].y_minus)),
    );
    let x = state.aggregate(
        edges
            .clone()
            .enumerate()
            .map(|(j, l)| (weighted(j, l), &state.edges[l].x_plus)),
    );

    let idx = depth - 1;
    state.middle[idx][node].y_minus = y.clone();
    state.middle[idx][node].y_plus = y.clone();
    state.middle[idx][node].x_plus = x.clone();
    for l in edges {
        state.edges[l].y_minus = y.clone();
        state.edges[l].x_plus = x.clone();
    }
    let workers = state.hierarchy.edge_workers(node * span).start
        ..state.hierarchy.edge_workers((node + 1) * span - 1).end;
    for i in workers {
        state.workers[i].y = y.clone();
        state.workers[i].x = x.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Dummy(Tier);

    impl Strategy for Dummy {
        fn name(&self) -> &'static str {
            "Dummy"
        }
        fn tier(&self) -> Tier {
            self.0
        }
        fn local_step(
            &self,
            _t: usize,
            _w: &mut WorkerState,
            _g: &mut dyn FnMut(&Vector, &mut Vector),
        ) {
        }
        fn edge_aggregate(&self, _k: usize, _v: &mut EdgeView<'_>) {}
        fn cloud_aggregate(&self, _p: usize, _s: &mut FlState) {}
    }

    #[test]
    fn two_tier_strategy_rejects_multi_edge_topology() {
        let d = Dummy(Tier::Two);
        assert!(d.check_topology(&Hierarchy::two_tier(4)).is_ok());
        assert!(d.check_topology(&Hierarchy::balanced(2, 2)).is_err());
    }

    #[test]
    fn three_tier_strategy_accepts_both() {
        let d = Dummy(Tier::Three);
        assert!(d.check_topology(&Hierarchy::two_tier(4)).is_ok());
        assert!(d.check_topology(&Hierarchy::balanced(2, 2)).is_ok());
    }

    #[test]
    fn strategies_are_object_safe() {
        let boxed: Box<dyn Strategy> = Box::new(Dummy(Tier::Three));
        assert_eq!(boxed.name(), "Dummy");
    }

    #[test]
    fn default_stale_hooks_delegate_to_synchronous_hooks() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[derive(Default)]
        struct Counting {
            edge_calls: AtomicUsize,
            cloud_calls: AtomicUsize,
        }
        impl Strategy for Counting {
            fn name(&self) -> &'static str {
                "Counting"
            }
            fn tier(&self) -> Tier {
                Tier::Three
            }
            fn local_step(
                &self,
                _t: usize,
                _w: &mut WorkerState,
                _g: &mut dyn FnMut(&Vector, &mut Vector),
            ) {
            }
            fn edge_aggregate(&self, _k: usize, _v: &mut EdgeView<'_>) {
                self.edge_calls.fetch_add(1, Ordering::SeqCst);
            }
            fn cloud_aggregate(&self, _p: usize, _s: &mut FlState) {
                self.cloud_calls.fetch_add(1, Ordering::SeqCst);
            }
        }

        use hieradmo_topology::{Hierarchy, Weights};
        let h = Hierarchy::balanced(1, 2);
        let w = Weights::from_samples(&h, &[1, 1]);
        let mut state = FlState::new(h, w, &Vector::from(vec![0.0]));
        let s = Counting::default();
        // Even a non-trivial staleness vector reaches the synchronous hook
        // under the default impls (stale entries merged at full weight).
        s.edge_aggregate_stale(1, &mut state.edge_view(0), &[0, 3]);
        s.cloud_aggregate_stale(1, &mut state, &[2]);
        assert_eq!(s.edge_calls.load(Ordering::SeqCst), 1);
        assert_eq!(s.cloud_calls.load(Ordering::SeqCst), 1);
    }
}
