//! The [`Strategy`] trait: the hook interface every federated algorithm
//! implements against the shared [`FlState`].

use hieradmo_tensor::Vector;
use hieradmo_topology::Hierarchy;

use crate::state::{EdgeView, FlState, WorkerState};

/// Which architecture an algorithm is defined for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Two-tier (workers ↔ cloud): runs on a degenerate single-edge
    /// hierarchy with `π = 1`.
    Two,
    /// Three-tier (workers ↔ edges ↔ cloud).
    Three,
}

/// A federated-learning algorithm as a set of hooks called by
/// [`crate::driver::run`]:
///
/// 1. [`Strategy::local_step`] once per worker per local iteration
///    (possibly on parallel threads, hence `&self` + `Sync`);
/// 2. [`Strategy::edge_aggregate`] for every edge at `t = kτ`;
/// 3. [`Strategy::cloud_aggregate`] at `t = pτπ`.
///
/// Algorithms keep *all* mutable run state inside [`FlState`]; the strategy
/// object itself only holds hyper-parameters, which keeps every algorithm
/// trivially `Send + Sync`.
pub trait Strategy: Send + Sync {
    /// Display name (matches the paper's Table II row labels).
    fn name(&self) -> &'static str;

    /// The architecture this algorithm is defined for.
    fn tier(&self) -> Tier;

    /// Hook called once before training begins (after [`FlState::new`]'s
    /// common initialization). Most algorithms need nothing extra.
    fn init(&self, _state: &mut FlState) {}

    /// One local iteration on one worker. `grad(params, out)` evaluates the
    /// worker's mini-batch gradient at arbitrary parameters (the batch is
    /// fixed for this call), writing it into `out` — typically the worker's
    /// [`WorkerState::scratch`] buffer, so the steady state allocates
    /// nothing.
    fn local_step(
        &self,
        t: usize,
        worker: &mut WorkerState,
        grad: &mut dyn FnMut(&Vector, &mut Vector),
    );

    /// Edge aggregation `k` (at `t = kτ`) for the edge behind `view`.
    ///
    /// The view scopes the hook to exactly one edge's workers and state, so
    /// the driver may run all edges concurrently; implementations needing
    /// the edge index use [`EdgeView::edge`].
    fn edge_aggregate(&self, k: usize, view: &mut EdgeView<'_>);

    /// Cloud aggregation `p` (at `t = pτπ`).
    fn cloud_aggregate(&self, p: usize, state: &mut FlState);

    /// The parameters evaluated as "the global model" between aggregations.
    /// Defaults to the data-weighted average of worker models.
    fn global_params(&self, state: &FlState) -> Vector {
        state.average_worker_models()
    }

    /// Validates that the topology matches [`Strategy::tier`].
    ///
    /// # Errors
    ///
    /// Returns a message when a two-tier algorithm is given a multi-edge
    /// hierarchy.
    fn check_topology(&self, hierarchy: &Hierarchy) -> Result<(), String> {
        if self.tier() == Tier::Two && !hierarchy.is_two_tier() {
            return Err(format!(
                "{} is a two-tier algorithm; run it on Hierarchy::two_tier(n) \
                 with pi = 1 (got {} edges)",
                self.name(),
                hierarchy.num_edges()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Dummy(Tier);

    impl Strategy for Dummy {
        fn name(&self) -> &'static str {
            "Dummy"
        }
        fn tier(&self) -> Tier {
            self.0
        }
        fn local_step(
            &self,
            _t: usize,
            _w: &mut WorkerState,
            _g: &mut dyn FnMut(&Vector, &mut Vector),
        ) {
        }
        fn edge_aggregate(&self, _k: usize, _v: &mut EdgeView<'_>) {}
        fn cloud_aggregate(&self, _p: usize, _s: &mut FlState) {}
    }

    #[test]
    fn two_tier_strategy_rejects_multi_edge_topology() {
        let d = Dummy(Tier::Two);
        assert!(d.check_topology(&Hierarchy::two_tier(4)).is_ok());
        assert!(d.check_topology(&Hierarchy::balanced(2, 2)).is_err());
    }

    #[test]
    fn three_tier_strategy_accepts_both() {
        let d = Dummy(Tier::Three);
        assert!(d.check_topology(&Hierarchy::two_tier(4)).is_ok());
        assert!(d.check_topology(&Hierarchy::balanced(2, 2)).is_ok());
    }

    #[test]
    fn strategies_are_object_safe() {
        let boxed: Box<dyn Strategy> = Box::new(Dummy(Tier::Three));
        assert_eq!(boxed.name(), "Dummy");
    }
}
