//! The paper's *two-level virtual update* construction (Section IV-B,
//! Eqs. 8–15) — the analytical device behind Theorems 1 and 3.
//!
//! A virtual update replays the worker NAG recursion *as if* it ran on the
//! centralized edge loss `F_ℓ` (or the global loss `F` for the cloud
//! level), starting from the values right after an aggregation. The
//! distance between the real aggregated trajectory and this virtual one is
//! what Theorem 1 bounds by `h(·)`; the workspace-level test
//! `tests/theory_validation.rs` measures it and checks the bound.

use hieradmo_data::Dataset;
use hieradmo_models::Model;
use hieradmo_tensor::Vector;

/// One step of the NAG virtual recursion (Eqs. 10–11 / 14–15):
///
/// ```text
/// y_t = x_{t−1} − η ∇F(x_{t−1})
/// x_t = y_t + γ (y_t − y_{t−1})
/// ```
///
/// `grad` evaluates the relevant full-batch gradient (`∇F_ℓ` for an edge
/// virtual update, `∇F` for a cloud one).
pub fn virtual_step(
    x: &Vector,
    y: &Vector,
    eta: f32,
    gamma: f32,
    grad: &mut dyn FnMut(&Vector) -> Vector,
) -> (Vector, Vector) {
    let g = grad(x);
    let mut y_new = x.clone();
    y_new.axpy(-eta, &g);
    let mut x_new = y_new.clone();
    x_new.axpy(gamma, &(&y_new - y));
    (x_new, y_new)
}

/// The full virtual trajectory over one interval: starting from the
/// post-aggregation `(x⁰, y⁰)` (Eqs. 8–9 / 12–13), runs `steps` virtual
/// updates against the *combined* dataset's full-batch gradient and returns
/// the `x` sequence `[x⁰, x¹, …, x^steps]`.
///
/// For an edge interval, pass the concatenation of the edge's worker
/// shards (so the gradient is `∇F_ℓ`); for a cloud interval, pass all data
/// (`∇F`).
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn virtual_trajectory<M: Model>(
    model: &mut M,
    data: &Dataset,
    x0: &Vector,
    y0: &Vector,
    eta: f32,
    gamma: f32,
    steps: usize,
) -> Vec<Vector> {
    assert!(!data.is_empty(), "virtual update needs data");
    let all: Vec<usize> = (0..data.len()).collect();
    let mut grad = |p: &Vector| {
        model.set_params(p);
        model.loss_and_grad(data, &all).1
    };
    let mut xs = Vec::with_capacity(steps + 1);
    let mut x = x0.clone();
    let mut y = y0.clone();
    xs.push(x.clone());
    for _ in 0..steps {
        let (x_new, y_new) = virtual_step(&x, &y, eta, gamma, &mut grad);
        x = x_new;
        y = y_new;
        xs.push(x.clone());
    }
    xs
}

/// Merges worker shards into one dataset (the edge's combined data `D_ℓ`),
/// cloning samples.
///
/// # Panics
///
/// Panics if `shards` is empty, all shards are empty, or shards disagree on
/// shape/classes.
pub fn merge_shards(shards: &[&Dataset]) -> Dataset {
    assert!(!shards.is_empty(), "need at least one shard");
    let shape = shards[0].shape();
    let classes = shards[0].num_classes();
    let mut samples = Vec::new();
    for s in shards {
        assert_eq!(s.shape(), shape, "shard shape mismatch");
        assert_eq!(s.num_classes(), classes, "shard class-count mismatch");
        samples.extend(s.iter().cloned());
    }
    assert!(!samples.is_empty(), "all shards are empty");
    Dataset::new(samples, shape, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieradmo_data::synthetic::linear_regression;
    use hieradmo_models::zoo;

    #[test]
    fn virtual_step_with_zero_gamma_is_gradient_descent() {
        let x = Vector::from(vec![1.0, 1.0]);
        let y = x.clone();
        let mut grad = |p: &Vector| p.clone(); // ∇F(x) = x (quadratic bowl)
        let (x1, y1) = virtual_step(&x, &y, 0.1, 0.0, &mut grad);
        assert_eq!(y1.as_slice(), &[0.9, 0.9]);
        assert_eq!(x1.as_slice(), &[0.9, 0.9]);
    }

    #[test]
    fn virtual_trajectory_descends_a_quadratic() {
        let tt = linear_regression(4, 2, 60, 10, 0.01, 5);
        let mut model = zoo::linear_regression(&tt.train, 3);
        let x0 = model.params();
        let y0 = x0.clone();
        let xs = virtual_trajectory(&mut model, &tt.train, &x0, &y0, 0.05, 0.5, 20);
        assert_eq!(xs.len(), 21);
        let all: Vec<usize> = (0..tt.train.len()).collect();
        model.set_params(&xs[0]);
        let l0 = model.loss(&tt.train, &all);
        model.set_params(xs.last().unwrap());
        let l_end = model.loss(&tt.train, &all);
        assert!(
            l_end < l0 * 0.5,
            "virtual NAG should descend: {l0} -> {l_end}"
        );
    }

    #[test]
    fn merge_shards_concatenates() {
        let tt = linear_regression(2, 1, 10, 2, 0.0, 1);
        let merged = merge_shards(&[&tt.train, &tt.test]);
        assert_eq!(merged.len(), 12);
        assert_eq!(merged.shape(), tt.train.shape());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn merge_empty_list_panics() {
        let _ = merge_shards(&[]);
    }
}
