//! Elastic hierarchy runtime: churn, live re-parenting, and graceful
//! degradation over the tick-driven engine.
//!
//! The frozen-tree invariant — every `TierPath` stable for the life of a
//! run — relaxes here to *stable within a topology epoch*. A
//! [`ChurnPlan`] schedules [`TopologyEvent`]s at cloud-round boundaries
//! (ticks `r·τ·π`); [`run_elastic`] splits the run into epoch segments,
//! executes each segment through the unchanged frozen-tree engine
//! ([`crate::run`]'s internals, with resume + stop), and applies the
//! boundary's events to the [`TrainingSnapshot`] between segments via
//! [`apply_churn_boundary`] — a pure function of `(snapshot, plan, seed)`
//! that the event-driven runtime (`hieradmo-simrt`) calls too, so both
//! engines evolve the identical topology and carry identical state across
//! every epoch.
//!
//! Consequences of the segmented design, all deterministic and gated by
//! `tests/elastic_topology.rs`:
//!
//! * an **empty plan** runs one segment and is *bitwise identical* to the
//!   frozen-tree engine — [`run_elastic`] literally delegates;
//! * per-worker RNG streams (mini-batch order, adversary draws) are keyed
//!   by *flat position within the epoch's tree*, so a worker that changes
//!   parents continues on the stream of its new position — a pure
//!   function of `(plan, seed)`, replayed identically by every engine and
//!   thread count;
//! * the adversary plan is keyed by **uid** (registered data index) and
//!   re-mapped to flat positions per epoch, so a Byzantine worker stays
//!   Byzantine wherever it migrates;
//! * weight shares re-derive per epoch from the members' sample counts —
//!   re-parenting renormalizes `D_{i,ℓ}/D_ℓ` and `D_ℓ/D` automatically.
//!
//! Worker state across a parent change keeps its model `x` and lookahead
//! `y`, damps its velocity by `1/(1 + min(age, MIDDLE_AGE_CAP))` (age =
//! cloud rounds under the previous parent — the bounded-age carry-over
//! rule middle tiers already use for stale subtrees), and drops interval
//! accumulators (they describe sums the new edge never requested).
//! Workers joining fresh materialize from their edge's `(x₊, y₋)` exactly
//! like sampled-cohort slots do.

use std::collections::BTreeMap;

use hieradmo_data::Dataset;
use hieradmo_metrics::{AdversaryCounters, ConvergenceCurve, TopologyCounters};
use hieradmo_models::Model;
use hieradmo_netsim::AdversaryPlan;
use hieradmo_tensor::Vector;
use hieradmo_topology::{ChurnPlan, Hierarchy, TopologyEvent, TopologyVersion};

use crate::checkpoint::TrainingSnapshot;
use crate::config::RunConfig;
use crate::driver::{run_span, RunError, RunResult};
use crate::population::StatePool;
use crate::state::{EdgeState, WorkerState};
use crate::strategy::{Strategy, MIDDLE_AGE_CAP};

/// The initial [`TopologyVersion`] of an elastic run: the configured
/// hierarchy's edges all live, uids dealt in flat order, and
/// `registered − hierarchy.num_workers()` trailing uids registered but
/// absent (join candidates).
///
/// # Errors
///
/// Everything [`TopologyVersion::initial`] rejects, as a human-readable
/// message.
pub fn initial_version(
    hierarchy: &Hierarchy,
    registered: usize,
) -> Result<TopologyVersion, String> {
    let sizes: Vec<usize> = (0..hierarchy.num_edges())
        .map(|e| hierarchy.workers_in_edge(e))
        .collect();
    TopologyVersion::initial(&sizes, registered)
}

/// The frozen tree of one topology epoch: the `Hierarchy` the engines
/// execute against plus the flat-position → uid map behind it.
pub fn epoch_tree(version: &TopologyVersion) -> (Hierarchy, Vec<usize>) {
    (
        Hierarchy::new(version.live_edge_sizes()),
        version.flat_members(),
    )
}

/// The ticks in `(start, end]` at which `plan` mutates the topology: one
/// per scheduled cloud-round boundary, `round · τ · π` each. `end` is
/// included so a checkpoint taken exactly at a boundary carries the
/// *post*-transform tree (the resume never re-applies the boundary).
pub fn epoch_cuts(plan: &ChurnPlan, cfg: &RunConfig, start: usize, end: usize) -> Vec<usize> {
    let interval = cfg.tau * cfg.pi;
    plan.boundary_rounds(cfg.total_iters / interval)
        .into_iter()
        .map(|r| r * interval)
        .filter(|&t| t > start && t <= end)
        .collect()
}

/// Re-keys a uid-keyed adversary plan onto the flat positions of one
/// epoch's tree: entries whose worker is present map to its flat
/// position; absent Byzantine workers corrupt nothing this epoch.
pub fn remap_adversaries(plan: &AdversaryPlan, uids: &[usize]) -> AdversaryPlan {
    let mut remapped = AdversaryPlan::none();
    for b in &plan.byzantine {
        if let Some(flat) = uids.iter().position(|&u| u == b.worker) {
            let mut entry = *b;
            entry.worker = flat;
            remapped.byzantine.push(entry);
        }
    }
    remapped
}

fn materialize_from_edge(edge: &EdgeState) -> WorkerState {
    let mut w = WorkerState::new(&edge.x_plus);
    StatePool::materialize(&mut w, &edge.x_plus, &edge.y_minus);
    w
}

/// The re-parenting transform: keep `x`/`y`, damp the velocity by the
/// bounded-age rule `1/(1 + min(age, MIDDLE_AGE_CAP))`, drop interval
/// accumulators and scratch.
fn rehome(state: &mut WorkerState, age: u64) {
    let damp = 1.0 / (1 + (age as usize).min(MIDDLE_AGE_CAP)) as f32;
    state.v.scale_in_place(damp);
    state.grad_accum.fill(0.0);
    state.y_accum.fill(0.0);
    state.v_accum.fill(0.0);
    state.steps = 0;
    state.scratch.fill(0.0);
}

/// The re-formation assignment: greedy capacity-bounded clustering of
/// worker velocity against per-edge member-velocity centroids. Workers
/// assign in uid order to the live edge whose centroid their `v` best
/// aligns with (ties and zero-velocity workers to the lowest edge id),
/// each edge capped at `⌈present / live⌉` members so no epoch degenerates
/// to a single giant edge.
fn reform_assignment(
    version: &TopologyVersion,
    states: &BTreeMap<usize, WorkerState>,
) -> Vec<(usize, usize)> {
    let live = version.live_edges();
    let centroids: Vec<Option<Vector>> = live
        .iter()
        .map(|&e| {
            let members = version.members(e);
            if members.is_empty() {
                return None;
            }
            let mut c = Vector::zeros(states[&members[0]].v.len());
            for uid in members {
                c.axpy(1.0, &states[uid].v);
            }
            c.scale_in_place(1.0 / members.len() as f32);
            Some(c)
        })
        .collect();
    let present: Vec<usize> = {
        let mut m = version.flat_members();
        m.sort_unstable();
        m
    };
    let capacity = present.len().div_ceil(live.len());
    let mut load = vec![0usize; live.len()];
    let mut assignment = Vec::with_capacity(present.len());
    for &uid in &present {
        let mut best: Option<(usize, f32)> = None;
        for j in 0..live.len() {
            if load[j] >= capacity {
                continue;
            }
            let score = centroids[j]
                .as_ref()
                .map_or(0.0, |c| states[&uid].v.cosine(c));
            let better = match best {
                None => true,
                // Strictly-better only: ties keep the lowest edge id.
                Some((_, s)) => score > s,
            };
            if better {
                best = Some((j, score));
            }
        }
        let (j, _) = best.expect("capacity ⌈n/live⌉ · live ≥ n leaves a slot");
        load[j] += 1;
        assignment.push((uid, live[j]));
    }
    assignment
}

/// Applies one churn boundary to an end-of-segment snapshot: the round's
/// scheduled events in plan order, then the periodic re-formation if its
/// cadence fires. Returns the next epoch's snapshot — worker states in
/// the *new* tree's flat order, live edge states in stable-id order, the
/// cloud untouched, and [`TrainingSnapshot::topology`] stamped with the
/// advanced [`TopologyVersion`] — and tallies every mutation into
/// `counters`.
///
/// This is the single transform both engines call between epoch segments,
/// so a churn run replays bitwise across engines and thread counts.
///
/// # Errors
///
/// A human-readable message when an event is invalid against the live
/// topology (absent worker, dead edge, failing the last edge, …).
pub fn apply_churn_boundary(
    snapshot: &TrainingSnapshot,
    version: &mut TopologyVersion,
    plan: &ChurnPlan,
    round: usize,
    seed: u64,
    counters: &mut TopologyCounters,
) -> Result<TrainingSnapshot, String> {
    let uids = version.flat_members();
    if snapshot.workers.len() != uids.len() {
        return Err(format!(
            "snapshot holds {} workers, the topology version {}",
            snapshot.workers.len(),
            uids.len()
        ));
    }
    let mut states: BTreeMap<usize, WorkerState> = uids
        .iter()
        .copied()
        .zip(snapshot.workers.iter().cloned())
        .collect();
    let mut edge_states: BTreeMap<usize, EdgeState> = version
        .live_edges()
        .into_iter()
        .zip(snapshot.edges.iter().cloned())
        .collect();
    version.begin_epoch(round as u64);

    fn reform(
        version: &mut TopologyVersion,
        states: &mut BTreeMap<usize, WorkerState>,
        edge_states: &mut BTreeMap<usize, EdgeState>,
        counters: &mut TopologyCounters,
    ) -> Result<(), String> {
        let assignment = reform_assignment(version, states);
        let moves = version.reform(&assignment)?;
        for m in &moves {
            rehome(states.get_mut(&m.worker).expect("mover is present"), m.age);
        }
        counters.reformations += 1;
        counters.migrations += moves.len() as u64;
        // Edges emptied by the re-formation failed in place; drop their
        // state so the snapshot matches the live tree.
        edge_states.retain(|&e, _| version.is_live(e));
        Ok(())
    }

    for event in plan.events_at(round) {
        match *event {
            TopologyEvent::Join { worker, edge } => {
                version.join(worker, edge)?;
                let edge_state = edge_states
                    .get(&edge)
                    .expect("join validated the edge live");
                states.insert(worker, materialize_from_edge(edge_state));
                counters.joins += 1;
            }
            TopologyEvent::Leave { worker } => {
                let edge = version.leave(worker)?;
                states.remove(&worker);
                if !version.is_live(edge) {
                    edge_states.remove(&edge);
                }
                counters.leaves += 1;
            }
            TopologyEvent::Migrate { worker, edge } => {
                let from = version
                    .parent_of(worker)
                    .ok_or_else(|| format!("worker {worker} is not in the tree"))?;
                let m = version.migrate(worker, edge)?;
                rehome(states.get_mut(&worker).expect("migrant is present"), m.age);
                if !version.is_live(from) {
                    edge_states.remove(&from);
                }
                counters.migrations += 1;
            }
            TopologyEvent::EdgeFail { edge } => {
                let moves = version.fail_edge(edge, seed)?;
                edge_states.remove(&edge);
                for m in &moves {
                    rehome(states.get_mut(&m.worker).expect("orphan is present"), m.age);
                }
                counters.migrations += moves.len() as u64;
                counters.orphaned_rounds += moves.len() as u64;
            }
            TopologyEvent::EdgeReform => {
                reform(version, &mut states, &mut edge_states, counters)?;
            }
        }
    }
    if plan.reform_at(round) {
        reform(version, &mut states, &mut edge_states, counters)?;
    }

    let workers = version
        .flat_members()
        .into_iter()
        .map(|uid| states.remove(&uid).expect("flat members have state"))
        .collect();
    let edges = version
        .live_edges()
        .into_iter()
        .map(|e| edge_states.remove(&e).expect("live edges have state"))
        .collect();
    Ok(TrainingSnapshot {
        algorithm: snapshot.algorithm.clone(),
        tick: snapshot.tick,
        workers,
        edges,
        cloud: snapshot.cloud.clone(),
        middle: Vec::new(),
        topology: Some(version.clone()),
    })
}

fn merge_adversaries(out: &mut [AdversaryCounters], uids: &[usize], segment: &[AdversaryCounters]) {
    for (flat, c) in segment.iter().enumerate() {
        let o = &mut out[uids[flat]];
        o.poisoned_uploads += c.poisoned_uploads;
        o.poisoned_models += c.poisoned_models;
        o.poisoned_momenta += c.poisoned_momenta;
        o.noise_injections += c.noise_injections;
    }
}

fn validate_elastic(
    hierarchy: &Hierarchy,
    worker_data: &[Dataset],
    cfg: &RunConfig,
) -> Result<(), RunError> {
    cfg.validate().map_err(RunError::BadConfig)?;
    if worker_data.len() < hierarchy.num_workers() {
        return Err(RunError::Data(format!(
            "{} worker datasets cannot register an initial tree of {}",
            worker_data.len(),
            hierarchy.num_workers()
        )));
    }
    if let Some(i) = worker_data.iter().position(Dataset::is_empty) {
        return Err(RunError::Data(format!("worker {i} has no data")));
    }
    if let Some(b) = cfg
        .adversary
        .byzantine
        .iter()
        .find(|b| b.worker >= worker_data.len())
    {
        return Err(RunError::BadConfig(format!(
            "adversary plan marks uid {} Byzantine, but only {} workers are \
             registered (elastic adversary plans are keyed by uid)",
            b.worker,
            worker_data.len()
        )));
    }
    Ok(())
}

/// The shared segmented driver behind the elastic entry points.
#[allow(clippy::too_many_arguments)]
fn run_elastic_span<M, S>(
    strategy: &S,
    model: &M,
    hierarchy: &Hierarchy,
    worker_data: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    resume: Option<&TrainingSnapshot>,
    stop_at: Option<usize>,
) -> Result<(RunResult, Option<TrainingSnapshot>), RunError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    validate_elastic(hierarchy, worker_data, cfg)?;
    let plan = cfg.churn.clone();
    if plan.is_empty()
        && resume.is_none()
        && stop_at.is_none()
        && worker_data.len() == hierarchy.num_workers()
    {
        // Gate (a): the empty plan IS the frozen-tree engine. (With
        // registered-but-absent trailing uids the single-segment path
        // below slices the present prefix and is equally identical.)
        return run_span(
            strategy,
            model,
            hierarchy,
            worker_data,
            test_data,
            cfg,
            None,
            None,
            None,
        );
    }

    let mut version = match resume {
        Some(snap) => match &snap.topology {
            Some(v) => v.clone(),
            None if plan.is_empty() => {
                initial_version(hierarchy, worker_data.len()).map_err(RunError::Topology)?
            }
            None => {
                return Err(RunError::BadConfig(
                    "snapshot carries no topology version; it was not captured \
                     by an elastic run and cannot resume under a non-empty \
                     ChurnPlan"
                        .into(),
                ))
            }
        },
        None => initial_version(hierarchy, worker_data.len()).map_err(RunError::Topology)?,
    };
    if version.registered() != worker_data.len() {
        return Err(RunError::Data(format!(
            "snapshot topology registers {} uids, {} datasets supplied",
            version.registered(),
            worker_data.len()
        )));
    }

    let start = resume.map_or(0, |s| s.tick);
    let end = stop_at.unwrap_or(cfg.total_iters);
    let cuts = epoch_cuts(&plan, cfg, start, end);

    let mut frozen = cfg.clone();
    frozen.churn = ChurnPlan::none();
    let mut counters = TopologyCounters::default();
    let mut cur: Option<TrainingSnapshot> = resume.cloned();
    let mut results: Vec<RunResult> = Vec::new();
    let mut uid_maps: Vec<Vec<usize>> = Vec::new();

    let run_segment = |cur: &Option<TrainingSnapshot>,
                       stop: Option<usize>,
                       version: &TopologyVersion,
                       results: &mut Vec<RunResult>,
                       uid_maps: &mut Vec<Vec<usize>>|
     -> Result<Option<TrainingSnapshot>, RunError> {
        let (tree, uids) = epoch_tree(version);
        let data: Vec<Dataset> = uids.iter().map(|&u| worker_data[u].clone()).collect();
        let mut seg_cfg = frozen.clone();
        seg_cfg.adversary = remap_adversaries(&cfg.adversary, &uids);
        let (res, snap) = run_span(
            strategy,
            model,
            &tree,
            &data,
            test_data,
            &seg_cfg,
            cur.as_ref(),
            stop,
            None,
        )?;
        results.push(res);
        uid_maps.push(uids);
        Ok(snap)
    };

    for &t in &cuts {
        let snap = run_segment(&cur, Some(t), &version, &mut results, &mut uid_maps)?
            .expect("stop_at segments return their snapshot");
        let round = t / (cfg.tau * cfg.pi);
        let next = apply_churn_boundary(&snap, &mut version, &plan, round, cfg.seed, &mut counters)
            .map_err(RunError::BadConfig)?;
        cur = Some(next);
    }
    if cuts.last() != Some(&end) {
        let stop = stop_at;
        let snap = run_segment(&cur, stop, &version, &mut results, &mut uid_maps)?;
        cur = snap.map(|mut s| {
            s.topology = Some(version.clone());
            s
        });
    }

    let mut stitched = stitch(results, &uid_maps, worker_data.len());
    stitched.topology = counters;
    Ok((stitched, cur))
}

/// Concatenates per-segment results into one run-shaped result. The
/// `adversaries` tallies come back keyed by **uid** (one slot per
/// registered worker), since flat positions are only meaningful within an
/// epoch.
fn stitch(results: Vec<RunResult>, uid_maps: &[Vec<usize>], registered: usize) -> RunResult {
    let mut iter = results.into_iter();
    let mut out = iter.next().expect("at least one segment runs");
    let mut adversaries = vec![AdversaryCounters::default(); registered];
    let mut curve = ConvergenceCurve::new();
    for p in out.curve.points() {
        curve.push(*p);
    }
    merge_adversaries(&mut adversaries, &uid_maps[0], &out.adversaries);
    for (res, uids) in iter.zip(&uid_maps[1..]) {
        for p in res.curve.points() {
            curve.push(*p);
        }
        out.gamma_trace.extend(res.gamma_trace);
        out.cos_trace.extend(res.cos_trace);
        out.final_params = res.final_params;
        out.elapsed += res.elapsed;
        out.timings.local_steps += res.timings.local_steps;
        out.timings.edge_agg += res.timings.edge_agg;
        out.timings.cloud_agg += res.timings.cloud_agg;
        out.timings.eval += res.timings.eval;
        merge_adversaries(&mut adversaries, uids, &res.adversaries);
    }
    out.curve = curve;
    out.adversaries = adversaries;
    out
}

/// Runs `strategy` under the elastic topology runtime: the frozen-tree
/// training loop ([`crate::run`]) segmented at every
/// [`ChurnPlan`] boundary in `cfg.churn`, with workers joining, leaving,
/// migrating, edges failing (members re-homed live) and re-forming
/// between segments.
///
/// `worker_data` registers the whole uid space: the first
/// `hierarchy.num_workers()` datasets fill the initial tree in flat
/// order, trailing datasets belong to registered-but-absent workers that
/// [`TopologyEvent::Join`] can bring in. `cfg.adversary` is keyed by uid.
///
/// An empty plan delegates to the frozen-tree engine unchanged (bitwise
/// identity, gated by `tests/elastic_topology.rs`); any plan replays
/// bitwise across thread counts and engines for the same `(plan, seed)`.
///
/// # Errors
///
/// Everything [`crate::run`] rejects, plus churn events that are invalid
/// against the live topology when they apply.
pub fn run_elastic<M, S>(
    strategy: &S,
    model: &M,
    hierarchy: &Hierarchy,
    worker_data: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
) -> Result<RunResult, RunError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    run_elastic_span(
        strategy,
        model,
        hierarchy,
        worker_data,
        test_data,
        cfg,
        None,
        None,
    )
    .map(|(res, _)| res)
}

/// Runs the elastic runtime up to tick `stop_at` (an edge boundary) and
/// returns the state there: the elastic counterpart of
/// [`crate::run_until`]. The snapshot carries the topology version in
/// force at `stop_at` ([`TrainingSnapshot::topology`]); a stop exactly at
/// a churn boundary captures the *post*-transform tree, so resuming never
/// re-applies the boundary.
///
/// # Errors
///
/// Everything [`run_elastic`] rejects, plus a `stop_at` that is not a
/// positive multiple of `τ` within the run.
pub fn run_elastic_until<M, S>(
    strategy: &S,
    model: &M,
    hierarchy: &Hierarchy,
    worker_data: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    stop_at: usize,
) -> Result<(RunResult, TrainingSnapshot), RunError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    run_elastic_span(
        strategy,
        model,
        hierarchy,
        worker_data,
        test_data,
        cfg,
        None,
        Some(stop_at),
    )
    .map(|(res, snap)| (res, snap.expect("stop_at returns a snapshot")))
}

/// Resumes an elastic run from a [`run_elastic_until`] snapshot and runs
/// it to completion, replaying the remaining churn boundaries: the
/// elastic counterpart of [`crate::run_resumed`]. `hierarchy` and
/// `worker_data` are the *initial* tree and full registered data table,
/// exactly as passed to the original run.
///
/// # Errors
///
/// Everything [`run_elastic`] rejects, plus a snapshot without a topology
/// version when the plan is non-empty.
pub fn run_elastic_resumed<M, S>(
    strategy: &S,
    model: &M,
    hierarchy: &Hierarchy,
    worker_data: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    snapshot: &TrainingSnapshot,
) -> Result<RunResult, RunError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    run_elastic_span(
        strategy,
        model,
        hierarchy,
        worker_data,
        test_data,
        cfg,
        Some(snapshot),
        None,
    )
    .map(|(res, _)| res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::small_problem;
    use crate::algorithms::HierAdMo;
    use crate::driver::run;
    use hieradmo_topology::ScheduledEvent;

    fn churn_cfg(threads: usize) -> RunConfig {
        RunConfig {
            eta: 0.05,
            tau: 5,
            pi: 2,
            total_iters: 200,
            batch_size: 16,
            eval_every: 50,
            threads: Some(threads),
            ..RunConfig::default()
        }
    }

    fn churn_plan() -> ChurnPlan {
        ChurnPlan {
            events: vec![
                ScheduledEvent {
                    round: 5,
                    event: TopologyEvent::Join { worker: 4, edge: 0 },
                },
                ScheduledEvent {
                    round: 10,
                    event: TopologyEvent::EdgeFail { edge: 1 },
                },
                ScheduledEvent {
                    round: 15,
                    event: TopologyEvent::EdgeReform,
                },
            ],
            reform_every: None,
        }
    }

    #[test]
    fn empty_plan_is_bitwise_identical_to_the_frozen_engine() {
        let (_, test, shards, model) = small_problem(4);
        let h = Hierarchy::balanced(2, 2);
        let cfg = churn_cfg(1);
        let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
        let frozen = run(&algo, &model, &h, &shards, &test, &cfg).unwrap();
        let elastic = run_elastic(&algo, &model, &h, &shards, &test, &cfg).unwrap();
        assert_eq!(frozen.final_params, elastic.final_params);
        assert_eq!(frozen.curve, elastic.curve);
        assert_eq!(frozen.gamma_trace, elastic.gamma_trace);
        assert!(elastic.topology.is_zero());
    }

    #[test]
    fn churn_runs_tally_counters_and_replay_across_thread_counts() {
        let (_, test, shards, model) = small_problem(5);
        let h = Hierarchy::balanced(2, 2);
        let mut cfg = churn_cfg(1);
        cfg.churn = churn_plan();
        let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
        let one = run_elastic(&algo, &model, &h, &shards, &test, &cfg).unwrap();
        // Join at r5, edge 1 fails at r10 (2 orphans re-homed), reform of
        // the single surviving edge at r15 (no moves possible).
        assert_eq!(one.topology.joins, 1);
        assert_eq!(one.topology.orphaned_rounds, 2);
        assert_eq!(one.topology.migrations, 2);
        assert_eq!(one.topology.reformations, 1);
        assert_eq!(one.topology.leaves, 0);
        assert!(one.final_params.is_finite());

        let mut cfg4 = cfg.clone();
        cfg4.threads = Some(4);
        let four = run_elastic(&algo, &model, &h, &shards, &test, &cfg4).unwrap();
        assert_eq!(one.final_params, four.final_params);
        assert_eq!(one.curve, four.curve);
        assert_eq!(one.topology, four.topology);
    }

    #[test]
    fn until_and_resumed_replay_the_remaining_boundaries_bitwise() {
        let (_, test, shards, model) = small_problem(5);
        let h = Hierarchy::balanced(2, 2);
        let mut cfg = churn_cfg(1);
        cfg.churn = churn_plan();
        let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
        let full = run_elastic(&algo, &model, &h, &shards, &test, &cfg).unwrap();
        // Tick 100 is round 10 — exactly the EdgeFail boundary, so the
        // snapshot must carry the post-failure tree (one live edge, five
        // workers) and the resume must not re-apply the event.
        let (_, snap) = run_elastic_until(&algo, &model, &h, &shards, &test, &cfg, 100).unwrap();
        let topo = snap.topology.as_ref().expect("elastic snapshot");
        assert_eq!(topo.live_edges(), vec![0]);
        assert_eq!(snap.workers.len(), 5);
        let resumed = run_elastic_resumed(&algo, &model, &h, &shards, &test, &cfg, &snap).unwrap();
        assert_eq!(resumed.final_params, full.final_params);
        // The resumed span re-applies only the reform boundary.
        assert_eq!(resumed.topology.reformations, 1);
        assert_eq!(resumed.topology.joins, 0);
        assert_eq!(resumed.topology.migrations, 0);
    }
}
