//! The simulation engine: walks the aggregation schedule, runs worker
//! steps on a persistent worker pool, fires the strategy's aggregation
//! hooks, and records a convergence curve.
//!
//! Parallelism is governed by [`RunConfig::resolved_threads`]. The engine
//! chunks every phase — local steps, per-edge aggregation, evaluation — in
//! a fixed order that does not depend on the thread count, so results are
//! bitwise identical whether a run uses one thread or all cores.

use std::error::Error;
use std::fmt;
use std::mem;
use std::time::{Duration, Instant};

use hieradmo_data::{Batcher, Dataset};
use hieradmo_metrics::{AdversaryCounters, ConvergenceCurve, EvalPoint, TopologyCounters};
use hieradmo_models::{EvalSums, Model};
use hieradmo_netsim::adversary::{AdversarySampler, AttackModel};
use hieradmo_tensor::Vector;
use hieradmo_topology::{Hierarchy, Schedule, ScheduleError, TierAggregation, TierTree, Weights};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::byzantine::{corrupt_upload, replay_upload};
use crate::checkpoint::TrainingSnapshot;
use crate::config::RunConfig;
/// Samples per evaluation chunk, re-exported so alternative drivers (the
/// event-driven runtime in `hieradmo-simrt`) can reproduce this engine's
/// exact f64 partial-sum reduction order.
pub use crate::pool::EVAL_CHUNK;
use crate::pool::{
    chunk, EdgeItem, EvalChunk, EvalTarget, ExecCtx, Job, Pool, Reply, StepCtx, StepItem,
};
use crate::state::{EdgeState, FlState, WorkerState};
use crate::strategy::{Strategy, TierScope};

/// Errors a run can fail with before any training happens.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The configuration failed [`RunConfig::validate`].
    BadConfig(String),
    /// The schedule could not be built from `(τ, π, T)`.
    Schedule(ScheduleError),
    /// The algorithm's tier does not match the topology.
    Topology(String),
    /// Worker data does not line up with the hierarchy.
    Data(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::BadConfig(m) => write!(f, "invalid configuration: {m}"),
            RunError::Schedule(e) => write!(f, "invalid schedule: {e}"),
            RunError::Topology(m) => write!(f, "topology mismatch: {m}"),
            RunError::Data(m) => write!(f, "data mismatch: {m}"),
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScheduleError> for RunError {
    fn from(e: ScheduleError) -> Self {
        RunError::Schedule(e)
    }
}

/// Wall-clock spent in each phase of a run (simulation time, not emulated
/// network time — see `hieradmo-netsim` for the latter).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Worker local steps, summed over all ticks.
    pub local_steps: Duration,
    /// Edge aggregations (every `τ` ticks).
    pub edge_agg: Duration,
    /// Cloud aggregations (every `τ·π` ticks).
    pub cloud_agg: Duration,
    /// Global-model evaluations (test set + training probe).
    pub eval: Duration,
}

impl PhaseTimings {
    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.local_steps + self.edge_agg + self.cloud_agg + self.eval
    }
}

impl From<PhaseTimings> for hieradmo_metrics::PhaseBreakdown {
    /// The serializable (milliseconds) form of the timings, as persisted by
    /// `hieradmo_metrics::export::RunRecord`.
    fn from(t: PhaseTimings) -> Self {
        hieradmo_metrics::PhaseBreakdown {
            local_steps_ms: t.local_steps.as_secs_f64() * 1000.0,
            edge_agg_ms: t.edge_agg.as_secs_f64() * 1000.0,
            cloud_agg_ms: t.cloud_agg.as_secs_f64() * 1000.0,
            eval_ms: t.eval.as_secs_f64() * 1000.0,
        }
    }
}

/// The outcome of one training run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Algorithm name (Table II row label).
    pub algorithm: String,
    /// Accuracy/loss trajectory of the global model.
    pub curve: ConvergenceCurve,
    /// `(k, mean-over-edges γℓ)` at every edge aggregation — the raw data
    /// behind the Fig. 2(i)–(k) adaptive-γℓ diagnostics.
    pub gamma_trace: Vec<(usize, f32)>,
    /// `(k, mean-over-edges cos θ)` at every edge aggregation (Eq. 6's
    /// measured worker/edge momentum agreement).
    pub cos_trace: Vec<(usize, f32)>,
    /// Per-middle-tier γ diagnostics on N-tier runs: one trace per
    /// middle depth (in [`TierTree::middle_depths`] order), each holding
    /// `(round, mean-over-nodes γ)` at that tier's aggregations — the
    /// per-tier generalization of [`RunResult::gamma_trace`]. Empty on
    /// three-tier runs; an identity (pass-through) tier's trace stays
    /// empty, since that tier never aggregates.
    pub tier_gamma: Vec<Vec<(usize, f32)>>,
    /// Final global model parameters.
    pub final_params: Vector,
    /// Wall-clock duration of the simulation (not of the emulated network;
    /// see `hieradmo-netsim` for trace-driven time).
    pub elapsed: Duration,
    /// Per-phase wall-clock breakdown of `elapsed`.
    pub timings: PhaseTimings,
    /// Per-worker Byzantine corruption tallies, indexed like the
    /// hierarchy's workers. All-zero (but still one entry per worker)
    /// when [`RunConfig::adversary`](crate::RunConfig) is empty.
    pub adversaries: Vec<AdversaryCounters>,
    /// Churn tallies from the elastic topology layer
    /// ([`crate::elastic::run_elastic`]). All-zero on frozen-tree runs.
    pub topology: TopologyCounters,
}

/// Runs `strategy` on the given topology/data with the paper's training
/// loop (Algorithm 1's skeleton):
///
/// 1. every tick, each worker takes one local step on its own mini-batch;
/// 2. at `t = kτ`, every edge aggregates (edges run in parallel on the
///    pool);
/// 3. at `t = pτπ`, the cloud aggregates;
/// 4. every `eval_every` ticks (and at `t = T`) the global model is
///    evaluated on the test set and a capped training probe.
///
/// The worker pool is created once and lives for the whole loop; see
/// [`RunConfig::threads`] for the parallelism knob and the determinism
/// guarantee.
///
/// # Errors
///
/// Returns [`RunError`] if the config, schedule, topology or data are
/// inconsistent.
pub fn run<M, S>(
    strategy: &S,
    model: &M,
    hierarchy: &Hierarchy,
    worker_data: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
) -> Result<RunResult, RunError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    run_span(
        strategy,
        model,
        hierarchy,
        worker_data,
        test_data,
        cfg,
        None,
        None,
        None,
    )
    .map(|(result, _)| result)
}

/// Runs `strategy` over an arbitrary-depth [`TierTree`]: the N-tier
/// generalization of [`run`]. Worker state is laid out over the tree's
/// edge tier ([`TierTree::edge_hierarchy`]); middle tiers fire bottom-up
/// at their interval boundaries through
/// [`Strategy::tier_aggregate`], between the edge and root aggregations.
///
/// A depth-3 tree runs the *identical* code path as [`run`] on the
/// corresponding hierarchy — no middle tiers exist, and the edge/root
/// hooks default to the seed behavior — so results are bitwise equal
/// (pinned by `tests/tier_equivalence.rs`).
///
/// # Errors
///
/// Everything [`run`] rejects, plus a config whose `(τ, π)` disagree
/// with the tree (`cfg.tau` must equal [`TierTree::tau`], `cfg.pi` must
/// equal [`TierTree::pi_total`]) or worker data that does not span the
/// tree's leaves.
pub fn run_tiered<M, S>(
    strategy: &S,
    model: &M,
    tree: &TierTree,
    worker_data: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
) -> Result<RunResult, RunError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    let hierarchy = tree.edge_hierarchy();
    run_span(
        strategy,
        model,
        &hierarchy,
        worker_data,
        test_data,
        cfg,
        None,
        None,
        Some(tree),
    )
    .map(|(result, _)| result)
}

/// The N-tier counterpart of [`run_until`]: stops at an edge boundary
/// and returns the snapshot (which carries every middle tier's state —
/// see [`TrainingSnapshot::middle`]) alongside the partial result.
///
/// # Errors
///
/// Everything [`run_tiered`] and [`run_until`] reject.
#[allow(clippy::too_many_arguments)]
pub fn run_tiered_until<M, S>(
    strategy: &S,
    model: &M,
    tree: &TierTree,
    worker_data: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    stop_at: usize,
) -> Result<(RunResult, TrainingSnapshot), RunError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    let hierarchy = tree.edge_hierarchy();
    let (result, snapshot) = run_span(
        strategy,
        model,
        &hierarchy,
        worker_data,
        test_data,
        cfg,
        None,
        Some(stop_at),
        Some(tree),
    )?;
    Ok((
        result,
        snapshot.expect("run_span produces a snapshot whenever stop_at is given"),
    ))
}

/// The N-tier counterpart of [`run_resumed`]: continues from a snapshot
/// captured by [`run_tiered_until`] with the same tree, strategy, model,
/// data and config, bitwise identically to the uninterrupted
/// [`run_tiered`].
///
/// # Errors
///
/// Everything [`run_tiered`] and [`run_resumed`] reject, plus a
/// snapshot whose middle-tier shape does not match the tree.
pub fn run_tiered_resumed<M, S>(
    strategy: &S,
    model: &M,
    tree: &TierTree,
    worker_data: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    snapshot: &TrainingSnapshot,
) -> Result<RunResult, RunError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    let hierarchy = tree.edge_hierarchy();
    run_span(
        strategy,
        model,
        &hierarchy,
        worker_data,
        test_data,
        cfg,
        Some(snapshot),
        None,
        Some(tree),
    )
    .map(|(result, _)| result)
}

/// Like [`run`], but stops after tick `stop_at` (which must be a positive
/// multiple of `τ` no larger than `T`) and returns the federation state at
/// that edge boundary alongside the partial result. Feeding the snapshot
/// to [`run_resumed`] continues the run bitwise identically: concatenating
/// the two partial curves (and γℓ traces) reproduces an uninterrupted
/// [`run`] exactly.
///
/// # Errors
///
/// Everything [`run`] rejects, plus a `stop_at` that is zero, past `T`, or
/// not on an edge-aggregation boundary ([`RunError::BadConfig`]).
#[allow(clippy::too_many_arguments)]
pub fn run_until<M, S>(
    strategy: &S,
    model: &M,
    hierarchy: &Hierarchy,
    worker_data: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    stop_at: usize,
) -> Result<(RunResult, TrainingSnapshot), RunError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    let (result, snapshot) = run_span(
        strategy,
        model,
        hierarchy,
        worker_data,
        test_data,
        cfg,
        None,
        Some(stop_at),
        None,
    )?;
    Ok((
        result,
        snapshot.expect("run_span produces a snapshot whenever stop_at is given"),
    ))
}

/// Continues a run from a [`TrainingSnapshot`] captured by [`run_until`],
/// with the *same* strategy, model, data and config, through the remaining
/// ticks `snapshot.tick + 1 ..= T`. The resumed trajectory is bitwise
/// identical to the corresponding suffix of an uninterrupted [`run`]: the
/// driver replays the dropout and mini-batch RNG draws of the completed
/// prefix (without recomputing any steps), so every stream resumes at the
/// exact position it held at the snapshot. The returned curve and traces
/// cover only the resumed span.
///
/// # Errors
///
/// Everything [`run`] rejects, plus a snapshot whose algorithm, tick or
/// shapes do not match this run ([`RunError::BadConfig`] /
/// [`RunError::Data`]).
pub fn run_resumed<M, S>(
    strategy: &S,
    model: &M,
    hierarchy: &Hierarchy,
    worker_data: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    snapshot: &TrainingSnapshot,
) -> Result<RunResult, RunError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    run_span(
        strategy,
        model,
        hierarchy,
        worker_data,
        test_data,
        cfg,
        Some(snapshot),
        None,
        None,
    )
    .map(|(result, _)| result)
}

/// The shared engine behind [`run`], [`run_until`], [`run_resumed`] and
/// the elastic runner's epoch segments (`crate::elastic`): optionally
/// starts from a mid-run snapshot (`resume`), optionally stops at an edge
/// boundary (`stop_at`, which also makes it return the state there).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_span<M, S>(
    strategy: &S,
    model: &M,
    hierarchy: &Hierarchy,
    worker_data: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    resume: Option<&TrainingSnapshot>,
    stop_at: Option<usize>,
    tiers: Option<&TierTree>,
) -> Result<(RunResult, Option<TrainingSnapshot>), RunError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    cfg.validate().map_err(RunError::BadConfig)?;
    if !cfg.churn.is_empty() {
        return Err(RunError::BadConfig(
            "the frozen-tree engine cannot apply a non-empty ChurnPlan; \
             run it through crate::elastic::run_elastic"
                .into(),
        ));
    }
    if let Some(tree) = tiers {
        if cfg.tau != tree.tau() || cfg.pi != tree.pi_total() {
            return Err(RunError::BadConfig(format!(
                "config (tau = {}, pi = {}) disagrees with the tier tree \
                 (tau = {}, pi_total = {})",
                cfg.tau,
                cfg.pi,
                tree.tau(),
                tree.pi_total()
            )));
        }
    }
    if let Some(stop) = stop_at {
        if stop == 0 || stop > cfg.total_iters || stop % cfg.tau != 0 {
            return Err(RunError::BadConfig(format!(
                "stop_at must be a positive multiple of tau ({}) no larger than \
                 total_iters ({}), got {stop}",
                cfg.tau, cfg.total_iters
            )));
        }
    }
    let start = match resume {
        None => 0,
        Some(snap) => {
            if snap.algorithm != strategy.name() {
                return Err(RunError::BadConfig(format!(
                    "snapshot was captured by {}, cannot resume under {}",
                    snap.algorithm,
                    strategy.name()
                )));
            }
            if snap.tick == 0 || snap.tick >= cfg.total_iters || snap.tick % cfg.tau != 0 {
                return Err(RunError::BadConfig(format!(
                    "snapshot tick {} is not an edge boundary (multiple of tau = {}) \
                     strictly before total_iters = {}",
                    snap.tick, cfg.tau, cfg.total_iters
                )));
            }
            if snap.workers.len() != hierarchy.num_workers()
                || snap.edges.len() != hierarchy.num_edges()
            {
                return Err(RunError::Data(format!(
                    "snapshot holds {} workers / {} edges for a hierarchy with {} / {}",
                    snap.workers.len(),
                    snap.edges.len(),
                    hierarchy.num_workers(),
                    hierarchy.num_edges()
                )));
            }
            if snap.cloud.x_plus.len() != model.params().len() {
                return Err(RunError::Data(format!(
                    "snapshot dimension {} does not match model dimension {}",
                    snap.cloud.x_plus.len(),
                    model.params().len()
                )));
            }
            if let Some(stop) = stop_at {
                if stop <= snap.tick {
                    return Err(RunError::BadConfig(format!(
                        "stop_at ({stop}) must be past the snapshot tick ({})",
                        snap.tick
                    )));
                }
            }
            snap.tick
        }
    };
    strategy
        .check_topology(hierarchy)
        .map_err(RunError::Topology)?;
    if worker_data.len() != hierarchy.num_workers() {
        return Err(RunError::Data(format!(
            "{} worker datasets for {} workers",
            worker_data.len(),
            hierarchy.num_workers()
        )));
    }
    if let Some(i) = worker_data.iter().position(Dataset::is_empty) {
        return Err(RunError::Data(format!("worker {i} has no data")));
    }
    if let Some(b) = cfg
        .adversary
        .byzantine
        .iter()
        .find(|b| b.worker >= hierarchy.num_workers())
    {
        return Err(RunError::BadConfig(format!(
            "adversary plan marks worker {} Byzantine, but the hierarchy has \
             only {} workers",
            b.worker,
            hierarchy.num_workers()
        )));
    }
    let schedule = Schedule::three_tier(cfg.tau, cfg.pi, cfg.total_iters)?;

    let started = Instant::now();
    let samples: Vec<u64> = worker_data.iter().map(|d| d.len() as u64).collect();
    let weights = Weights::from_samples(hierarchy, &samples);
    // The pool threads need the weights by shared reference while the main
    // thread holds `&mut state`, so the engine keeps its own copy.
    let engine_weights = weights.clone();
    let mut state = FlState::new(hierarchy.clone(), weights, &model.params());
    state.aggregator = cfg.aggregator;
    if let Some(tree) = tiers {
        state.attach_tree(tree.clone());
    }
    strategy.init(&mut state);
    if let Some(snap) = resume {
        if snap.middle.len() != state.middle.len()
            || snap
                .middle
                .iter()
                .zip(&state.middle)
                .any(|(s, m)| s.len() != m.len())
        {
            return Err(RunError::Data(format!(
                "snapshot holds {} middle tiers for a tree with {}",
                snap.middle.len(),
                state.middle.len()
            )));
        }
        // All algorithm state lives in the tier vectors, so restoring
        // them overwrites everything `init` set up.
        state.workers = snap.workers.clone();
        state.edges = snap.edges.clone();
        state.cloud = snap.cloud.clone();
        state.middle = snap.middle.clone();
    }

    let train_probe = build_train_probe(worker_data, cfg.train_eval_cap);
    let threads = cfg.resolved_threads();

    // Per-worker step contexts: a model replica, a private batcher stream
    // (so data order is independent of scheduling), and a reusable batch
    // buffer. `None` while checked out to a job.
    let mut ctxs: Vec<Option<StepCtx<M>>> = worker_data
        .iter()
        .enumerate()
        .map(|(i, d)| {
            Some(StepCtx {
                model: model.clone(),
                batcher: Batcher::new(d.len(), cfg.batch_size, cfg.seed.wrapping_add(i as u64)),
                batch: Vec::with_capacity(cfg.batch_size.min(d.len())),
            })
        })
        .collect();
    let mut eval_model = model.clone();

    let mut curve = ConvergenceCurve::new();
    let mut gamma_trace = Vec::new();
    let mut cos_trace = Vec::new();
    let mut tier_gamma: Vec<Vec<(usize, f32)>> = vec![Vec::new(); state.middle.len()];
    let mut timings = PhaseTimings::default();
    // Failure-injection RNG: drawn per (tick, worker) serially on the main
    // thread so runs stay deterministic regardless of threading.
    let mut fault_rng = StdRng::seed_from_u64(cfg.seed ^ 0x5f5f_5f5f_5f5f_5f5f);
    // Byzantine workers: each owns a salted per-worker adversary stream
    // derived from the *training* seed, so the same poisoned trajectory
    // replays under any network seed and any thread count (uploads are
    // corrupted serially on the main thread, in flat worker order).
    let mut adversaries: Vec<Option<(AttackModel, AdversarySampler)>> = (0..state.workers.len())
        .map(|i| {
            cfg.adversary
                .attack_for(i)
                .map(|a| (a, AdversarySampler::from_stream(cfg.seed, i as u64)))
        })
        .collect();
    let mut adversary_counters = vec![AdversaryCounters::default(); state.workers.len()];

    let ctx = ExecCtx {
        strategy,
        cfg,
        worker_data,
        weights: &engine_weights,
        test_data,
        train_probe: &train_probe,
    };

    std::thread::scope(|scope| {
        let pool = Pool::new(scope, threads - 1, ctx, model);

        for tick in schedule.ticks() {
            if stop_at.is_some_and(|stop| tick.t > stop) {
                break;
            }
            let active: Vec<bool> = (0..state.workers.len())
                .map(|_| cfg.dropout == 0.0 || fault_rng.gen_range(0.0..1.0) >= cfg.dropout)
                .collect();

            if tick.t <= start {
                // Fast-forward over the already-trained prefix: replay
                // exactly the RNG draws an uninterrupted run would make —
                // one dropout draw per worker (above) and one mini-batch
                // draw per *active* worker (here) — without recomputing any
                // steps, so every stream resumes at the position it held
                // when the snapshot was captured.
                for (i, _) in active.iter().enumerate().filter(|(_, a)| **a) {
                    let c = ctxs[i].as_mut().expect("step context double checkout");
                    c.batcher.next_batch_into(&mut c.batch);
                }
                // Adversary streams advance once per upload (edge
                // boundary); replay them too, without touching state.
                if tick.edge_aggregation.is_some() {
                    let dim = state.dim();
                    for (attack, sampler) in adversaries.iter_mut().flatten() {
                        replay_upload(dim, attack, sampler);
                    }
                }
                continue;
            }

            let t0 = Instant::now();
            let items: Vec<StepItem<M>> = active
                .iter()
                .enumerate()
                .filter(|(_, a)| **a)
                .map(|(i, _)| StepItem {
                    idx: i,
                    worker: mem::replace(&mut state.workers[i], WorkerState::placeholder()),
                    ctx: ctxs[i].take().expect("step context double checkout"),
                })
                .collect();
            let jobs = chunk(items, threads)
                .into_iter()
                .map(|items| Job::Steps { t: tick.t, items })
                .collect();
            for reply in pool.exec(ctx, &mut eval_model, jobs) {
                let Reply::Steps(items) = reply else {
                    unreachable!("step job must yield a step reply")
                };
                for item in items {
                    state.workers[item.idx] = item.worker;
                    ctxs[item.idx] = Some(item.ctx);
                }
            }
            timings.local_steps += t0.elapsed();

            if let Some(k) = tick.edge_aggregation {
                let t0 = Instant::now();
                // Byzantine workers corrupt their upload at the moment it
                // becomes visible to the edge — i.e. right before the edge
                // aggregates. In this synchronous driver the worker state
                // *is* the upload, so corrupt it in place; the
                // redistribution at the end of `edge_aggregate` then
                // overwrites the poisoned fields, exactly as a mailbox
                // model would.
                for (i, adv) in adversaries.iter_mut().enumerate() {
                    if let Some((attack, sampler)) = adv {
                        corrupt_upload(
                            &mut state.workers[i],
                            attack,
                            sampler,
                            &mut adversary_counters[i],
                        );
                    }
                }
                edge_aggregations(&pool, ctx, &mut eval_model, &mut state, k, threads);
                let n_edges = state.edges.len() as f32;
                let mean_gamma = state.edges.iter().map(|e| e.gamma_edge).sum::<f32>() / n_edges;
                gamma_trace.push((k, mean_gamma));
                let mean_cos = state.edges.iter().map(|e| e.cos_theta).sum::<f32>() / n_edges;
                cos_trace.push((k, mean_cos));
                timings.edge_agg += t0.elapsed();

                // Middle tiers fire bottom-up whenever the edge round count
                // divides their synchronization period. They run serially on
                // the main thread and draw no RNG, so adding (or removing)
                // pass-through tiers cannot perturb any stream — the basis
                // of the depth-collapse equivalence guarantee.
                if let Some(tree) = tiers {
                    let t0 = Instant::now();
                    for d in tree.middle_depths().rev() {
                        // Identity tiers forward their children untouched:
                        // they neither fire the hook nor record γ, so a
                        // pass-through tree is bit-identical to its
                        // collapse, traces included.
                        if tree.levels()[d].aggregation == TierAggregation::Identity {
                            continue;
                        }
                        let period = tree.sync_rounds(d);
                        if k % period == 0 {
                            let round = k / period;
                            for node in 0..tree.nodes_at(d) {
                                strategy.tier_aggregate(
                                    TierScope::Middle {
                                        depth: d,
                                        node,
                                        state: &mut state,
                                    },
                                    round,
                                );
                            }
                            let tier = &state.middle[d - 1];
                            let mean =
                                tier.iter().map(|s| s.gamma_edge).sum::<f32>() / tier.len() as f32;
                            tier_gamma[d - 1].push((round, mean));
                        }
                    }
                    timings.cloud_agg += t0.elapsed();
                }
            }
            if let Some(p) = tick.cloud_aggregation {
                let t0 = Instant::now();
                if tiers.is_some() {
                    strategy.tier_aggregate(TierScope::Root(&mut state), p);
                } else {
                    strategy.cloud_aggregate(p, &mut state);
                }
                timings.cloud_agg += t0.elapsed();
            }

            if tick.t % cfg.eval_every == 0 || tick.t == cfg.total_iters {
                let t0 = Instant::now();
                let global = strategy.global_params(&state);
                let (test_eval, train_eval) =
                    evaluate_global(&pool, ctx, &mut eval_model, &global, threads);
                curve.push(EvalPoint {
                    iteration: tick.t,
                    train_loss: train_eval.loss,
                    test_loss: test_eval.loss,
                    test_accuracy: test_eval.accuracy,
                });
                timings.eval += t0.elapsed();
            }
        }
    });

    let final_params = strategy.global_params(&state);
    let snapshot = stop_at.map(|stop| TrainingSnapshot {
        algorithm: strategy.name().to_string(),
        tick: stop,
        workers: state.workers.clone(),
        edges: state.edges.clone(),
        cloud: state.cloud.clone(),
        middle: state.middle.clone(),
        topology: None,
    });
    Ok((
        RunResult {
            algorithm: strategy.name().to_string(),
            curve,
            gamma_trace,
            cos_trace,
            tier_gamma,
            final_params,
            elapsed: started.elapsed(),
            timings,
            adversaries: adversary_counters,
            topology: TopologyCounters::default(),
        },
        snapshot,
    ))
}

/// Runs aggregation `k` on every edge, in parallel across the pool: edge
/// states and workers are checked out as disjoint [`EdgeItem`]s (workers
/// are stored edge-major, so each edge owns a contiguous block), processed
/// in fixed edge order within each chunk, and reassembled by edge index.
fn edge_aggregations<M, S>(
    pool: &Pool<M>,
    ctx: ExecCtx<'_, S>,
    eval_model: &mut M,
    state: &mut FlState,
    k: usize,
    threads: usize,
) where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    let mut workers = mem::take(&mut state.workers);
    let mut items = Vec::with_capacity(state.edges.len());
    for edge in (0..state.edges.len()).rev() {
        let offset = state.hierarchy.edge_workers(edge).start;
        items.push(EdgeItem {
            edge,
            offset,
            workers: workers.split_off(offset),
            state: mem::replace(&mut state.edges[edge], EdgeState::placeholder()),
        });
    }
    items.reverse();

    let jobs = chunk(items, threads)
        .into_iter()
        .map(|items| Job::Edges { k, items })
        .collect();
    let mut returned: Vec<EdgeItem> = pool
        .exec(ctx, eval_model, jobs)
        .into_iter()
        .flat_map(|reply| {
            let Reply::Edges(items) = reply else {
                unreachable!("edge job must yield an edge reply")
            };
            items
        })
        .collect();
    returned.sort_unstable_by_key(|item| item.edge);

    // `workers` is empty after the split-offs; refill it edge-major.
    for item in returned {
        state.edges[item.edge] = item.state;
        workers.extend(item.workers);
    }
    state.workers = workers;
}

/// Evaluates `params` on the test set and the training probe, split into
/// fixed [`EVAL_CHUNK`]-sample chunks fanned out across the pool. Partial
/// sums are reduced in `(target, chunk index)` order, so the result is
/// identical for every thread count — including 1, which uses the same
/// chunking.
fn evaluate_global<M, S>(
    pool: &Pool<M>,
    ctx: ExecCtx<'_, S>,
    eval_model: &mut M,
    params: &Vector,
    threads: usize,
) -> (hieradmo_models::Evaluation, hieradmo_models::Evaluation)
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    let mut chunks = Vec::new();
    for (target, len) in [
        (EvalTarget::Test, ctx.test_data.len()),
        (EvalTarget::Probe, ctx.train_probe.len()),
    ] {
        for (idx, start) in (0..len).step_by(EVAL_CHUNK).enumerate() {
            chunks.push(EvalChunk {
                target,
                idx,
                range: start..(start + EVAL_CHUNK).min(len),
            });
        }
    }

    let jobs = chunk(chunks, threads)
        .into_iter()
        .map(|chunks| Job::Eval {
            params: params.clone(),
            chunks,
        })
        .collect();
    let mut partials: Vec<(EvalTarget, usize, EvalSums)> = pool
        .exec(ctx, eval_model, jobs)
        .into_iter()
        .flat_map(|reply| {
            let Reply::Eval(sums) = reply else {
                unreachable!("eval job must yield an eval reply")
            };
            sums
        })
        .collect();
    partials.sort_unstable_by_key(|&(target, idx, _)| (target, idx));

    let mut test_sums = EvalSums::default();
    let mut probe_sums = EvalSums::default();
    for (target, _, sums) in partials {
        match target {
            EvalTarget::Test => test_sums.merge(&sums),
            EvalTarget::Probe => probe_sums.merge(&sums),
        }
    }
    (test_sums.finish(), probe_sums.finish())
}

/// Evaluates `params` on the test set and training probe with this
/// engine's exact reduction — fixed [`EVAL_CHUNK`]-sample chunks, partial
/// sums merged in `(target, chunk index)` order — on caller-provided model
/// replicas, one per evaluation lane. With a single replica everything
/// runs on the calling thread through the identical code path, so the
/// result is bitwise independent of the lane count.
///
/// Public so alternative drivers (the event-driven runtime in
/// `hieradmo-simrt` and the virtual-population engines) evaluate through
/// *one* implementation and stay bitwise comparable to [`run`].
///
/// # Panics
///
/// Panics if `models` is empty.
pub fn evaluate_on_replicas<M>(
    models: &mut [M],
    test: &Dataset,
    probe: &Dataset,
    params: &Vector,
) -> (hieradmo_models::Evaluation, hieradmo_models::Evaluation)
where
    M: Model + Send,
{
    assert!(!models.is_empty(), "need at least one model replica");
    let mut chunks: Vec<(u8, usize, std::ops::Range<usize>)> = Vec::new();
    for (target, len) in [(0u8, test.len()), (1u8, probe.len())] {
        for (idx, start) in (0..len).step_by(EVAL_CHUNK).enumerate() {
            chunks.push((target, idx, start..(start + EVAL_CHUNK).min(len)));
        }
    }
    let lanes = models.len().clamp(1, chunks.len().max(1));
    let mut partials: Vec<(u8, usize, EvalSums)> = Vec::with_capacity(chunks.len());
    if lanes <= 1 {
        let model = &mut models[0];
        model.set_params(params);
        for (t, idx, r) in chunks {
            let data = if t == 0 { test } else { probe };
            partials.push((t, idx, model.evaluate_range(data, r)));
        }
    } else {
        let per = chunks.len().div_ceil(lanes);
        let groups: Vec<Vec<(u8, usize, std::ops::Range<usize>)>> =
            chunks.chunks(per).map(<[_]>::to_vec).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .zip(models.iter_mut())
                .map(|(group, model)| {
                    scope.spawn(move || {
                        model.set_params(params);
                        group
                            .into_iter()
                            .map(|(t, idx, r)| {
                                let data = if t == 0 { test } else { probe };
                                (t, idx, model.evaluate_range(data, r))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                partials.extend(h.join().expect("evaluation thread panicked"));
            }
        });
    }
    partials.sort_unstable_by_key(|&(t, idx, _)| (t, idx));
    let mut test_sums = EvalSums::default();
    let mut probe_sums = EvalSums::default();
    for (t, _, s) in partials {
        if t == 0 {
            test_sums.merge(&s);
        } else {
            probe_sums.merge(&s);
        }
    }
    (test_sums.finish(), probe_sums.finish())
}

/// A fixed, affordable probe of training data for the train-loss metric:
/// round-robin over the worker shards up to `cap` samples total (always at
/// least one sample).
///
/// Public so alternative drivers (the event-driven co-simulation runtime in
/// `hieradmo-simrt`) can build the *same* probe and keep their evaluation
/// bitwise comparable to [`run`].
pub fn build_train_probe(worker_data: &[Dataset], cap: usize) -> Dataset {
    let total: usize = worker_data.iter().map(Dataset::len).sum();
    let take = cap.min(total).max(1);
    let mut samples = Vec::with_capacity(take);
    let mut cursors = vec![0usize; worker_data.len()];
    'outer: loop {
        let mut advanced = false;
        for (i, data) in worker_data.iter().enumerate() {
            if cursors[i] < data.len() {
                samples.push(data.sample(cursors[i]).clone());
                cursors[i] += 1;
                advanced = true;
                if samples.len() >= take {
                    break 'outer;
                }
            }
        }
        if !advanced {
            break;
        }
    }
    Dataset::new(
        samples,
        worker_data[0].shape(),
        worker_data[0].num_classes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::small_problem;
    use crate::algorithms::{FedAvg, HierAdMo};

    fn cfg() -> RunConfig {
        RunConfig {
            eta: 0.05,
            tau: 5,
            pi: 2,
            total_iters: 100,
            eval_every: 25,
            batch_size: 16,
            threads: Some(1),
            ..RunConfig::default()
        }
    }

    #[test]
    fn records_expected_eval_points() {
        let (_, test, shards, model) = small_problem(4);
        let h = Hierarchy::balanced(2, 2);
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let res = run(&algo, &model, &h, &shards, &test, &cfg()).unwrap();
        let iters: Vec<usize> = res.curve.points().iter().map(|p| p.iteration).collect();
        assert_eq!(iters, vec![25, 50, 75, 100]);
        assert_eq!(res.algorithm, "HierAdMo");
        assert_eq!(res.final_params.len(), model.dim());
        assert_eq!(res.gamma_trace.len(), 20, "K = 100/5 edge aggregations");
        assert_eq!(res.cos_trace.len(), 20);
        for &(_, cos) in &res.cos_trace {
            assert!((-1.0..=1.0).contains(&cos), "cos θ out of range: {cos}");
        }
    }

    #[test]
    fn parallel_and_serial_agree_exactly() {
        let (_, test, shards, model) = small_problem(4);
        let h = Hierarchy::balanced(2, 2);
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let serial = run(&algo, &model, &h, &shards, &test, &cfg()).unwrap();
        let par_cfg = RunConfig {
            threads: None,
            ..cfg()
        };
        let parallel = run(&algo, &model, &h, &shards, &test, &par_cfg).unwrap();
        assert_eq!(
            serial.curve, parallel.curve,
            "determinism across threading modes"
        );
        assert_eq!(serial.final_params, parallel.final_params);
    }

    #[test]
    fn explicit_thread_counts_agree_exactly() {
        let (_, test, shards, model) = small_problem(4);
        let h = Hierarchy::balanced(2, 2);
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let base = run(&algo, &model, &h, &shards, &test, &cfg()).unwrap();
        for threads in [2, 3, 8] {
            let t_cfg = RunConfig {
                threads: Some(threads),
                ..cfg()
            };
            let res = run(&algo, &model, &h, &shards, &test, &t_cfg).unwrap();
            assert_eq!(base.curve, res.curve, "threads = {threads}");
            assert_eq!(base.final_params, res.final_params, "threads = {threads}");
        }
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let (_, test, shards, model) = small_problem(4);
        let h = Hierarchy::balanced(2, 2);
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let a = run(&algo, &model, &h, &shards, &test, &cfg()).unwrap();
        let b = run(&algo, &model, &h, &shards, &test, &cfg()).unwrap();
        assert_eq!(a.curve, b.curve);
        let other_seed = RunConfig { seed: 99, ..cfg() };
        let c = run(&algo, &model, &h, &shards, &test, &other_seed).unwrap();
        // The tiny fixture can saturate to identical (zero-loss) curves on
        // any seed, so distinguish runs by the exact final parameters.
        assert_ne!(
            a.final_params, c.final_params,
            "different seed should change the trajectory"
        );
    }

    #[test]
    fn timings_cover_every_phase() {
        let (_, test, shards, model) = small_problem(4);
        let h = Hierarchy::balanced(2, 2);
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let res = run(&algo, &model, &h, &shards, &test, &cfg()).unwrap();
        assert!(res.timings.local_steps > Duration::ZERO);
        assert!(res.timings.edge_agg > Duration::ZERO);
        assert!(res.timings.cloud_agg > Duration::ZERO);
        assert!(res.timings.eval > Duration::ZERO);
        assert!(res.timings.total() <= res.elapsed);
    }

    #[test]
    fn errors_are_reported() {
        let (_, test, shards, model) = small_problem(4);
        let h = Hierarchy::balanced(2, 2);
        let algo = FedAvg::new(0.05);
        // Two-tier algorithm on three-tier topology.
        let err = run(&algo, &model, &h, &shards, &test, &cfg()).unwrap_err();
        assert!(matches!(err, RunError::Topology(_)));
        // Wrong shard count.
        let algo3 = HierAdMo::adaptive(0.05, 0.5);
        let err = run(&algo3, &model, &h, &shards[..3], &test, &cfg()).unwrap_err();
        assert!(matches!(err, RunError::Data(_)));
        // Bad config.
        let bad = RunConfig {
            total_iters: 101,
            ..cfg()
        };
        let err = run(&algo3, &model, &h, &shards, &test, &bad).unwrap_err();
        assert!(matches!(err, RunError::BadConfig(_)));
        // Errors display non-trivially.
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn train_probe_round_robins_across_workers() {
        let (_, _, shards, _) = small_problem(4);
        let probe = build_train_probe(&shards, 8);
        assert_eq!(probe.len(), 8);
        // With 4 workers and cap 8, the probe holds 2 samples per worker:
        // its class histogram must span more than one worker's classes.
        let classes_held = probe.class_histogram().iter().filter(|&&c| c > 0).count();
        assert!(classes_held >= 2);
    }
}
