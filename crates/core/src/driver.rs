//! The simulation engine: walks the aggregation schedule, runs worker
//! steps (optionally in parallel), fires the strategy's aggregation hooks,
//! and records a convergence curve.

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use hieradmo_data::{Batcher, Dataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use hieradmo_metrics::{ConvergenceCurve, EvalPoint};
use hieradmo_models::Model;
use hieradmo_tensor::Vector;
use hieradmo_topology::{Hierarchy, Schedule, ScheduleError, Weights};

use crate::config::RunConfig;
use crate::state::FlState;
use crate::strategy::Strategy;

/// Errors a run can fail with before any training happens.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The configuration failed [`RunConfig::validate`].
    BadConfig(String),
    /// The schedule could not be built from `(τ, π, T)`.
    Schedule(ScheduleError),
    /// The algorithm's tier does not match the topology.
    Topology(String),
    /// Worker data does not line up with the hierarchy.
    Data(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::BadConfig(m) => write!(f, "invalid configuration: {m}"),
            RunError::Schedule(e) => write!(f, "invalid schedule: {e}"),
            RunError::Topology(m) => write!(f, "topology mismatch: {m}"),
            RunError::Data(m) => write!(f, "data mismatch: {m}"),
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScheduleError> for RunError {
    fn from(e: ScheduleError) -> Self {
        RunError::Schedule(e)
    }
}

/// The outcome of one training run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Algorithm name (Table II row label).
    pub algorithm: String,
    /// Accuracy/loss trajectory of the global model.
    pub curve: ConvergenceCurve,
    /// `(k, mean-over-edges γℓ)` at every edge aggregation — the raw data
    /// behind the Fig. 2(i)–(k) adaptive-γℓ diagnostics.
    pub gamma_trace: Vec<(usize, f32)>,
    /// `(k, mean-over-edges cos θ)` at every edge aggregation (Eq. 6's
    /// measured worker/edge momentum agreement).
    pub cos_trace: Vec<(usize, f32)>,
    /// Final global model parameters.
    pub final_params: Vector,
    /// Wall-clock duration of the simulation (not of the emulated network;
    /// see `hieradmo-netsim` for trace-driven time).
    pub elapsed: Duration,
}

/// Runs `strategy` on the given topology/data with the paper's training
/// loop (Algorithm 1's skeleton):
///
/// 1. every tick, each worker takes one local step on its own mini-batch;
/// 2. at `t = kτ`, every edge aggregates;
/// 3. at `t = pτπ`, the cloud aggregates;
/// 4. every `eval_every` ticks (and at `t = T`) the global model is
///    evaluated on the test set and a capped training probe.
///
/// # Errors
///
/// Returns [`RunError`] if the config, schedule, topology or data are
/// inconsistent.
pub fn run<M, S>(
    strategy: &S,
    model: &M,
    hierarchy: &Hierarchy,
    worker_data: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
) -> Result<RunResult, RunError>
where
    M: Model + Clone,
    S: Strategy + ?Sized,
{
    cfg.validate().map_err(RunError::BadConfig)?;
    strategy
        .check_topology(hierarchy)
        .map_err(RunError::Topology)?;
    if worker_data.len() != hierarchy.num_workers() {
        return Err(RunError::Data(format!(
            "{} worker datasets for {} workers",
            worker_data.len(),
            hierarchy.num_workers()
        )));
    }
    if let Some(i) = worker_data.iter().position(Dataset::is_empty) {
        return Err(RunError::Data(format!("worker {i} has no data")));
    }
    let schedule = Schedule::three_tier(cfg.tau, cfg.pi, cfg.total_iters)?;

    let start = Instant::now();
    let samples: Vec<u64> = worker_data.iter().map(|d| d.len() as u64).collect();
    let weights = Weights::from_samples(hierarchy, &samples);
    let mut state = FlState::new(hierarchy.clone(), weights, &model.params());
    strategy.init(&mut state);

    let mut models: Vec<M> = (0..hierarchy.num_workers()).map(|_| model.clone()).collect();
    let mut batchers: Vec<Batcher> = worker_data
        .iter()
        .enumerate()
        .map(|(i, d)| Batcher::new(d.len(), cfg.batch_size, cfg.seed.wrapping_add(i as u64)))
        .collect();
    let mut eval_model = model.clone();
    let train_probe = build_train_probe(worker_data, cfg.train_eval_cap);

    let mut curve = ConvergenceCurve::new();
    let mut gamma_trace = Vec::new();
    let mut cos_trace = Vec::new();
    // Failure-injection RNG: drawn per (tick, worker) in a fixed order so
    // runs stay deterministic regardless of threading.
    let mut fault_rng = StdRng::seed_from_u64(cfg.seed ^ 0x5f5f_5f5f_5f5f_5f5f);

    for tick in schedule.ticks() {
        let active: Vec<bool> = (0..state.workers.len())
            .map(|_| cfg.dropout == 0.0 || fault_rng.gen_range(0.0..1.0) >= cfg.dropout)
            .collect();
        local_steps(
            strategy, &mut state, &mut models, &mut batchers, worker_data, &active, tick.t, cfg,
        );

        if let Some(k) = tick.edge_aggregation {
            for edge in 0..state.hierarchy.num_edges() {
                strategy.edge_aggregate(k, edge, &mut state);
            }
            let n_edges = state.edges.len() as f32;
            let mean_gamma = state.edges.iter().map(|e| e.gamma_edge).sum::<f32>() / n_edges;
            gamma_trace.push((k, mean_gamma));
            let mean_cos = state.edges.iter().map(|e| e.cos_theta).sum::<f32>() / n_edges;
            cos_trace.push((k, mean_cos));
        }
        if let Some(p) = tick.cloud_aggregation {
            strategy.cloud_aggregate(p, &mut state);
        }

        if tick.t % cfg.eval_every == 0 || tick.t == cfg.total_iters {
            let global = strategy.global_params(&state);
            eval_model.set_params(&global);
            let test_eval = eval_model.evaluate(test_data);
            let train_eval = eval_model.evaluate(&train_probe);
            curve.push(EvalPoint {
                iteration: tick.t,
                train_loss: train_eval.loss,
                test_loss: test_eval.loss,
                test_accuracy: test_eval.accuracy,
            });
        }
    }

    let final_params = strategy.global_params(&state);
    Ok(RunResult {
        algorithm: strategy.name().to_string(),
        curve,
        gamma_trace,
        cos_trace,
        final_params,
        elapsed: start.elapsed(),
    })
}

/// One tick of local steps across all workers, parallelized when enabled.
#[allow(clippy::too_many_arguments)]
fn local_steps<M, S>(
    strategy: &S,
    state: &mut FlState,
    models: &mut [M],
    batchers: &mut [Batcher],
    worker_data: &[Dataset],
    active: &[bool],
    t: usize,
    cfg: &RunConfig,
) where
    M: Model + Clone,
    S: Strategy + ?Sized,
{
    let mut items: Vec<_> = state
        .workers
        .iter_mut()
        .zip(models.iter_mut())
        .zip(batchers.iter_mut())
        .zip(worker_data.iter())
        .zip(active.iter())
        .filter(|(_, active)| **active)
        .map(|((((w, m), b), d), _)| (w, m, b, d))
        .collect();

    let step = |(worker, model, batcher, data): &mut (
        &mut crate::state::WorkerState,
        &mut M,
        &mut Batcher,
        &Dataset,
    )| {
        let batch = batcher.next_batch();
        let clip = cfg.clip_norm;
        let mut grad_fn = |p: &Vector| {
            model.set_params(p);
            let mut g = model.loss_and_grad(data, &batch).1;
            if let Some(max_norm) = clip {
                let norm = g.norm();
                if norm > max_norm {
                    g.scale_in_place(max_norm / norm);
                }
            }
            g
        };
        strategy.local_step(t, worker, &mut grad_fn);
    };

    let threads = if cfg.parallel {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        1
    };
    if threads <= 1 || items.len() <= 1 {
        for item in &mut items {
            step(item);
        }
    } else {
        let chunk = items.len().div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for chunk in items.chunks_mut(chunk) {
                scope.spawn(move |_| {
                    for item in chunk {
                        step(item);
                    }
                });
            }
        })
        .expect("worker thread panicked");
    }
}

/// A fixed, affordable probe of training data for the train-loss metric:
/// round-robin over the worker shards up to `cap` samples total.
fn build_train_probe(worker_data: &[Dataset], cap: usize) -> Dataset {
    let total: usize = worker_data.iter().map(Dataset::len).sum();
    let take = cap.min(total).max(1);
    let mut samples = Vec::with_capacity(take);
    let mut cursors = vec![0usize; worker_data.len()];
    'outer: loop {
        let mut advanced = false;
        for (i, data) in worker_data.iter().enumerate() {
            if cursors[i] < data.len() {
                samples.push(data.sample(cursors[i]).clone());
                cursors[i] += 1;
                advanced = true;
                if samples.len() >= take {
                    break 'outer;
                }
            }
        }
        if !advanced {
            break;
        }
    }
    Dataset::new(
        samples,
        worker_data[0].shape(),
        worker_data[0].num_classes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::small_problem;
    use crate::algorithms::{FedAvg, HierAdMo};

    fn cfg() -> RunConfig {
        RunConfig {
            eta: 0.05,
            tau: 5,
            pi: 2,
            total_iters: 100,
            eval_every: 25,
            batch_size: 16,
            parallel: false,
            ..RunConfig::default()
        }
    }

    #[test]
    fn records_expected_eval_points() {
        let (_, test, shards, model) = small_problem(4);
        let h = Hierarchy::balanced(2, 2);
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let res = run(&algo, &model, &h, &shards, &test, &cfg()).unwrap();
        let iters: Vec<usize> = res.curve.points().iter().map(|p| p.iteration).collect();
        assert_eq!(iters, vec![25, 50, 75, 100]);
        assert_eq!(res.algorithm, "HierAdMo");
        assert_eq!(res.final_params.len(), model.dim());
        assert_eq!(res.gamma_trace.len(), 20, "K = 100/5 edge aggregations");
        assert_eq!(res.cos_trace.len(), 20);
        for &(_, cos) in &res.cos_trace {
            assert!((-1.0..=1.0).contains(&cos), "cos θ out of range: {cos}");
        }
    }

    #[test]
    fn parallel_and_serial_agree_exactly() {
        let (_, test, shards, model) = small_problem(4);
        let h = Hierarchy::balanced(2, 2);
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let serial = run(&algo, &model, &h, &shards, &test, &cfg()).unwrap();
        let par_cfg = RunConfig { parallel: true, ..cfg() };
        let parallel = run(&algo, &model, &h, &shards, &test, &par_cfg).unwrap();
        assert_eq!(serial.curve, parallel.curve, "determinism across threading modes");
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let (_, test, shards, model) = small_problem(4);
        let h = Hierarchy::balanced(2, 2);
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let a = run(&algo, &model, &h, &shards, &test, &cfg()).unwrap();
        let b = run(&algo, &model, &h, &shards, &test, &cfg()).unwrap();
        assert_eq!(a.curve, b.curve);
        let other_seed = RunConfig { seed: 99, ..cfg() };
        let c = run(&algo, &model, &h, &shards, &test, &other_seed).unwrap();
        // The tiny fixture can saturate to identical (zero-loss) curves on
        // any seed, so distinguish runs by the exact final parameters.
        assert_ne!(
            a.final_params, c.final_params,
            "different seed should change the trajectory"
        );
    }

    #[test]
    fn errors_are_reported() {
        let (_, test, shards, model) = small_problem(4);
        let h = Hierarchy::balanced(2, 2);
        let algo = FedAvg::new(0.05);
        // Two-tier algorithm on three-tier topology.
        let err = run(&algo, &model, &h, &shards, &test, &cfg()).unwrap_err();
        assert!(matches!(err, RunError::Topology(_)));
        // Wrong shard count.
        let algo3 = HierAdMo::adaptive(0.05, 0.5);
        let err = run(&algo3, &model, &h, &shards[..3], &test, &cfg()).unwrap_err();
        assert!(matches!(err, RunError::Data(_)));
        // Bad config.
        let bad = RunConfig { total_iters: 101, ..cfg() };
        let err = run(&algo3, &model, &h, &shards, &test, &bad).unwrap_err();
        assert!(matches!(err, RunError::BadConfig(_)));
        // Errors display non-trivially.
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn train_probe_round_robins_across_workers() {
        let (_, _, shards, _) = small_problem(4);
        let probe = build_train_probe(&shards, 8);
        assert_eq!(probe.len(), 8);
        // With 4 workers and cap 8, the probe holds 2 samples per worker:
        // its class histogram must span more than one worker's classes.
        let classes_held = probe.class_histogram().iter().filter(|&&c| c > 0).count();
        assert!(classes_held >= 2);
    }
}
