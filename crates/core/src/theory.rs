//! The paper's convergence-bound machinery (Theorems 1–5).
//!
//! Implements the constants of Appendix A/B and the three bound functions:
//!
//! - `h(x, δℓ)` (Theorem 1 / Eq. 17): worker-vs-edge virtual-update gap
//!   after `x` local steps under gradient divergence `δℓ`;
//! - `s(τ)` (Theorem 2 / Eq. 20): the edge momentum update's displacement;
//! - `j(τ, π, δℓ, δ)` (Theorem 4 / Eq. 23): the per-cloud-round term of the
//!   final `O(1/T)` bound.
//!
//! Also provides empirical estimators for the problem constants the bounds
//! need — smoothness `β`, Lipschitz constant `ρ`, gradient divergence
//! `δ_{i,ℓ}` (Assumption 3) and the momentum/gradient ratio `μ`
//! (Eq. 30) — so the Theorem-1/4 *shape* claims can be checked against
//! measured runs (see `tests/theory_validation.rs` at the workspace root).

use hieradmo_data::Dataset;
use hieradmo_models::Model;
use hieradmo_tensor::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The analytic constants of Appendix A, fixed by `(η, β, γ)`.
///
/// `γA` and `γB` are the roots of the characteristic equation
/// `w² − (1+ηβ)(1+γ)·w + γ(1+ηβ) = 0` of the gap recurrence; `I`, `J` its
/// initial-condition coefficients (which satisfy `I + J = 1/(ηβ)`), and
/// `U`, `V` the dual pair with `U + V = 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundConstants {
    /// Worker learning rate `η`.
    pub eta: f64,
    /// Smoothness constant `β` (Assumption 2).
    pub beta: f64,
    /// Worker momentum factor `γ`.
    pub gamma: f64,
    /// Root constant `A`.
    pub a: f64,
    /// Root constant `B`.
    pub b: f64,
    /// Coefficient `I`.
    pub i: f64,
    /// Coefficient `J`.
    pub j: f64,
    /// Coefficient `U = (A−1)/(A−B)`.
    pub u: f64,
    /// Coefficient `V = (1−B)/(A−B)`.
    pub v: f64,
}

impl BoundConstants {
    /// Computes the constants for `(η, β, γ)`.
    ///
    /// # Panics
    ///
    /// Panics unless `η > 0`, `β > 0`, and `0 < γ < 1` (the domain of
    /// Theorem 1).
    pub fn new(eta: f64, beta: f64, gamma: f64) -> Self {
        assert!(eta > 0.0, "eta must be positive");
        assert!(beta > 0.0, "beta must be positive");
        assert!(
            gamma > 0.0 && gamma < 1.0,
            "Theorem 1 requires 0 < gamma < 1, got {gamma}"
        );
        let c = 1.0 + eta * beta;
        // (1+γ)² ≥ 4γ, so the discriminant c²(1+γ)² − 4γc = c[c(1+γ)² − 4γ]
        // is non-negative for c ≥ 1.
        let disc = (c * c * (1.0 + gamma).powi(2) - 4.0 * gamma * c).sqrt();
        let a = (c * (1.0 + gamma) + disc) / (2.0 * gamma);
        let b = (c * (1.0 + gamma) - disc) / (2.0 * gamma);
        let i = (gamma * a + a - 1.0) / ((a - b) * (gamma * a - 1.0));
        let j = (gamma * b + b - 1.0) / ((a - b) * (1.0 - gamma * b));
        let u = (a - 1.0) / (a - b);
        let v = (1.0 - b) / (a - b);
        BoundConstants {
            eta,
            beta,
            gamma,
            a,
            b,
            i,
            j,
            u,
            v,
        }
    }

    /// Eq. (17): the Theorem-1 gap bound
    /// `‖x_{ℓ−}^t − x_{[k],ℓ}^t‖ ≤ h(t − (k−1)τ, δℓ)`.
    ///
    /// `h(0) = h(1) = 0` (no divergence before the second local step) and
    /// `h` is increasing in `x`.
    pub fn h(&self, x: usize, delta: f64) -> f64 {
        let (eta, beta, gamma) = (self.eta, self.beta, self.gamma);
        let ga = gamma * self.a;
        let gb = gamma * self.b;
        let xf = x as i32;
        let growth = self.i * ga.powi(xf) + self.j * gb.powi(xf) - 1.0 / (eta * beta);
        let drift = (gamma * gamma * (gamma.powi(xf) - 1.0) - (gamma - 1.0) * x as f64)
            / (gamma - 1.0).powi(2);
        (eta * delta * (growth - drift)).max(0.0)
    }

    /// Eq. (20): the Theorem-2 edge-momentum displacement bound
    /// `‖x_{ℓ+}^{kτ} − x_{ℓ−}^{kτ}‖ ≤ s(τ) = γℓ·τ·η·ρ·(γμ + γ + 1)`.
    pub fn s(&self, tau: usize, gamma_edge: f64, rho: f64, mu: f64) -> f64 {
        gamma_edge * tau as f64 * self.eta * rho * (self.gamma * mu + self.gamma + 1.0)
    }

    /// Eq. (21): the Theorem-3 bound on the gap between the weighted edge
    /// virtual updates and the cloud virtual update at the end of a cloud
    /// interval:
    ///
    /// `‖x^{pτπ}_{[pπ]} − x^{pτπ}_{{p}}‖ ≤ h(τπ, δ) + π·Σℓ (Dℓ/D)(h(τ, δℓ) + s(τ))`.
    ///
    /// # Panics
    ///
    /// Panics if `edge_deltas` is empty.
    #[allow(clippy::too_many_arguments)]
    pub fn theorem3_gap(
        &self,
        tau: usize,
        pi: usize,
        edge_deltas: &[(f64, f64)],
        delta_global: f64,
        gamma_edge: f64,
        rho: f64,
        mu: f64,
    ) -> f64 {
        assert!(!edge_deltas.is_empty(), "need at least one edge");
        let s_tau = self.s(tau, gamma_edge, rho, mu);
        let edge_sum: f64 = edge_deltas
            .iter()
            .map(|&(w, d)| w * (self.h(tau, d) + s_tau))
            .sum();
        self.h(tau * pi, delta_global) + pi as f64 * edge_sum
    }

    /// Eq. (23): the Theorem-4 per-round term
    /// `j(τ, π, δℓ, δ) = h(τπ, δ) + (π+1)·Σℓ (Dℓ/D)(h(τ, δℓ) + s(τ))`.
    ///
    /// `edge_deltas` holds `(Dℓ/D, δℓ)` pairs; `delta_global` is `δ`.
    ///
    /// # Panics
    ///
    /// Panics if `edge_deltas` is empty.
    #[allow(clippy::too_many_arguments)]
    pub fn j_round(
        &self,
        tau: usize,
        pi: usize,
        edge_deltas: &[(f64, f64)],
        delta_global: f64,
        gamma_edge: f64,
        rho: f64,
        mu: f64,
    ) -> f64 {
        assert!(!edge_deltas.is_empty(), "need at least one edge");
        let s_tau = self.s(tau, gamma_edge, rho, mu);
        let edge_sum: f64 = edge_deltas
            .iter()
            .map(|&(w, d)| w * (self.h(tau, d) + s_tau))
            .sum();
        self.h(tau * pi, delta_global) + (pi as f64 + 1.0) * edge_sum
    }
}

/// Empirically estimates the smoothness constant `β` of a model's loss on
/// a dataset: the max of `‖∇F(x₁) − ∇F(x₂)‖ / ‖x₁ − x₂‖` over random
/// parameter pairs near the current parameters.
///
/// # Panics
///
/// Panics if `probes == 0` or the dataset is empty.
pub fn estimate_beta<M: Model>(model: &mut M, data: &Dataset, probes: usize, seed: u64) -> f64 {
    assert!(probes > 0, "need at least one probe");
    assert!(!data.is_empty(), "cannot probe an empty dataset");
    let mut rng = StdRng::seed_from_u64(seed);
    let base = model.params();
    let idx: Vec<usize> = (0..data.len()).collect();
    let mut best = 0.0f64;
    for _ in 0..probes {
        let x1 = perturb(&base, 0.5, &mut rng);
        let x2 = perturb(&x1, 0.1, &mut rng);
        model.set_params(&x1);
        let g1 = model.loss_and_grad(data, &idx).1;
        model.set_params(&x2);
        let g2 = model.loss_and_grad(data, &idx).1;
        let dx = x1.distance(&x2);
        if dx > 1e-9 {
            best = best.max(f64::from(g1.distance(&g2)) / f64::from(dx));
        }
    }
    model.set_params(&base);
    best
}

/// Empirically estimates the Lipschitz constant `ρ` (Assumption 1) as the
/// max gradient norm over random parameter probes.
///
/// # Panics
///
/// Panics if `probes == 0` or the dataset is empty.
pub fn estimate_rho<M: Model>(model: &mut M, data: &Dataset, probes: usize, seed: u64) -> f64 {
    assert!(probes > 0, "need at least one probe");
    assert!(!data.is_empty(), "cannot probe an empty dataset");
    let mut rng = StdRng::seed_from_u64(seed);
    let base = model.params();
    let idx: Vec<usize> = (0..data.len()).collect();
    let mut best = 0.0f64;
    for _ in 0..probes {
        let x = perturb(&base, 0.5, &mut rng);
        model.set_params(&x);
        let g = model.loss_and_grad(data, &idx).1;
        best = best.max(f64::from(g.norm()));
    }
    model.set_params(&base);
    best
}

/// Empirically estimates the gradient divergence `δ_{i,ℓ}` (Assumption 3):
/// the max over probes of `‖∇F_{i,ℓ}(x) − ∇F_ℓ(x)‖`, where `F_ℓ` is the
/// data-weighted loss over all `edge_data`.
///
/// Returns one `δ_{i,ℓ}` per worker dataset, in order.
///
/// # Panics
///
/// Panics if `worker_data` is empty, any shard is empty, or `probes == 0`.
pub fn estimate_divergence<M: Model>(
    model: &mut M,
    worker_data: &[Dataset],
    probes: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(!worker_data.is_empty(), "need at least one worker shard");
    assert!(probes > 0, "need at least one probe");
    for (i, d) in worker_data.iter().enumerate() {
        assert!(!d.is_empty(), "worker shard {i} is empty");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let base = model.params();
    let total: f64 = worker_data.iter().map(|d| d.len() as f64).sum();
    let mut deltas = vec![0.0f64; worker_data.len()];
    for _ in 0..probes {
        let x = perturb(&base, 0.5, &mut rng);
        model.set_params(&x);
        let grads: Vec<Vector> = worker_data
            .iter()
            .map(|d| {
                let idx: Vec<usize> = (0..d.len()).collect();
                model.loss_and_grad(d, &idx).1
            })
            .collect();
        let edge_grad = Vector::weighted_average(
            grads
                .iter()
                .zip(worker_data)
                .map(|(g, d)| (d.len() as f64 / total, g)),
        );
        for (delta, g) in deltas.iter_mut().zip(&grads) {
            *delta = delta.max(f64::from(g.distance(&edge_grad)));
        }
    }
    model.set_params(&base);
    deltas
}

/// The data-weighted average divergence `δℓ = Σᵢ (D_{i,ℓ}/Dℓ)·δ_{i,ℓ}`
/// (Assumption 3's definition).
///
/// # Panics
///
/// Panics if the two slices have different lengths or total weight is zero.
pub fn weighted_delta(deltas: &[f64], sample_counts: &[usize]) -> f64 {
    assert_eq!(deltas.len(), sample_counts.len(), "length mismatch");
    let total: usize = sample_counts.iter().sum();
    assert!(total > 0, "total sample count must be positive");
    deltas
        .iter()
        .zip(sample_counts)
        .map(|(&d, &n)| d * n as f64 / total as f64)
        .sum()
}

fn perturb(base: &Vector, scale: f32, rng: &mut StdRng) -> Vector {
    base.iter()
        .map(|&v| v + rng.gen_range(-scale..=scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consts() -> BoundConstants {
        BoundConstants::new(0.01, 1.0, 0.5)
    }

    #[test]
    fn i_plus_j_is_one_over_eta_beta() {
        for (eta, beta, gamma) in [(0.01, 1.0, 0.5), (0.05, 2.0, 0.3), (0.001, 10.0, 0.9)] {
            let c = BoundConstants::new(eta, beta, gamma);
            assert!(
                (c.i + c.j - 1.0 / (eta * beta)).abs() < 1e-6,
                "I+J = {} vs 1/(ηβ) = {}",
                c.i + c.j,
                1.0 / (eta * beta)
            );
            assert!((c.u + c.v - 1.0).abs() < 1e-9, "U+V must be 1");
        }
    }

    #[test]
    fn h_is_zero_at_zero_and_one_then_increases() {
        let c = consts();
        assert!(c.h(0, 1.0).abs() < 1e-9);
        assert!(c.h(1, 1.0).abs() < 1e-9);
        let mut prev = 0.0;
        for x in 2..30 {
            let v = c.h(x, 1.0);
            assert!(v >= prev, "h must be non-decreasing: h({x}) = {v} < {prev}");
            prev = v;
        }
        assert!(prev > 0.0, "h must eventually grow");
    }

    #[test]
    fn h_scales_linearly_in_delta() {
        let c = consts();
        let h1 = c.h(10, 1.0);
        let h3 = c.h(10, 3.0);
        assert!((h3 - 3.0 * h1).abs() < 1e-9 * h3.abs().max(1.0));
    }

    #[test]
    fn s_increases_with_tau_and_gamma_edge() {
        let c = consts();
        assert!(c.s(10, 0.5, 1.0, 1.0) < c.s(20, 0.5, 1.0, 1.0));
        assert!(c.s(10, 0.2, 1.0, 1.0) < c.s(10, 0.8, 1.0, 1.0));
        // Theorem 5's mechanism: smaller γℓ ⇒ smaller s(τ) ⇒ tighter bound.
        assert_eq!(c.s(10, 0.0, 1.0, 1.0), 0.0);
    }

    #[test]
    fn theorem3_is_strictly_below_theorem4_term() {
        // j(τ,π) uses (π+1)·Σ… while Theorem 3's gap uses π·Σ…, so the
        // Theorem-3 bound is always the smaller of the two.
        let c = consts();
        let edges = [(0.5, 1.0), (0.5, 2.0)];
        for (tau, pi) in [(5usize, 2usize), (10, 4), (20, 2)] {
            let t3 = c.theorem3_gap(tau, pi, &edges, 1.5, 0.5, 1.0, 1.0);
            let j = c.j_round(tau, pi, &edges, 1.5, 0.5, 1.0, 1.0);
            assert!(t3 < j, "theorem3 {t3} must be < j {j} at τ={tau}, π={pi}");
            assert!(t3 > 0.0);
        }
    }

    #[test]
    fn j_round_increases_with_tau_and_pi() {
        let c = consts();
        let edges = [(0.5, 1.0), (0.5, 2.0)];
        let j = |tau, pi| c.j_round(tau, pi, &edges, 1.5, 0.5, 1.0, 1.0);
        assert!(j(10, 2) < j(20, 2), "j must grow with tau");
        assert!(j(10, 2) < j(10, 4), "j must grow with pi");
    }

    #[test]
    fn theorem5_expected_gamma_comparison() {
        // Under cosθ ~ U(−1,1), Eq. 7 gives E[γℓ] = 1/4 < 1/2 = E[fixed].
        // Verify by direct Monte Carlo over the clamp.
        use crate::adaptive::clamp_gamma;
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mean: f64 = (0..n)
            .map(|_| f64::from(clamp_gamma(rng.gen_range(-1.0f32..1.0))))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - 0.25).abs() < 0.01,
            "E[adaptive γℓ] should be ≈ 1/4, got {mean}"
        );
        // Smaller expected γℓ ⇒ smaller expected s(τ) ⇒ Theorem 5.
        let c = consts();
        assert!(c.s(10, mean, 1.0, 1.0) < c.s(10, 0.5, 1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "0 < gamma < 1")]
    fn rejects_gamma_zero() {
        let _ = BoundConstants::new(0.01, 1.0, 0.0);
    }
}
