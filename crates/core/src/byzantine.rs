//! Byzantine upload corruption: turning an [`AttackModel`] into concrete
//! damage to a worker's upload.
//!
//! Both drivers funnel through [`corrupt_upload`] at the moment a worker's
//! state becomes visible to its edge — the synchronous driver corrupts the
//! worker in place immediately before `edge_aggregate`, the co-simulation
//! runtime corrupts the server-side mailbox copy the instant an upload
//! lands. Under `FullSync` the two are equivalent (the post-aggregation
//! redistribution overwrites everything an attack touched), which is what
//! keeps the adversarial core-vs-simrt bitwise gate in
//! `tests/adversary.rs` green.
//!
//! Determinism: only [`AttackModel::GaussianNoise`] draws from the
//! per-worker [`AdversarySampler`] stream (exactly `2 · dim` draws per
//! upload); [`replay_upload`] advances a stream past one upload without
//! touching any state, which is how checkpoint resume fast-forwards
//! adversary streams instead of storing them.

use hieradmo_metrics::AdversaryCounters;
use hieradmo_netsim::adversary::{AdversarySampler, AttackModel};

use crate::state::WorkerState;

/// Corrupts one worker upload according to `attack`, tallying what was
/// poisoned into `counters`.
///
/// The corruption covers every vector an edge aggregator may read: the
/// model `x`, the momentum `y`, the velocity `v`, and the three interval
/// accumulators — so all strategies (gradient-basis, momentum-basis and
/// displacement-basis alike) see the attack through whichever fields they
/// aggregate.
pub fn corrupt_upload(
    worker: &mut WorkerState,
    attack: &AttackModel,
    sampler: &mut AdversarySampler,
    counters: &mut AdversaryCounters,
) {
    counters.poisoned_uploads += 1;
    match *attack {
        AttackModel::SignFlip { scale } => {
            let k = -scale;
            worker.x.scale_in_place(k);
            worker.grad_accum.scale_in_place(k);
            scale_momenta(worker, k);
            counters.poisoned_models += 1;
            counters.poisoned_momenta += 1;
        }
        AttackModel::GradScale { factor } => {
            worker.x.scale_in_place(factor);
            worker.grad_accum.scale_in_place(factor);
            scale_momenta(worker, factor);
            counters.poisoned_models += 1;
            counters.poisoned_momenta += 1;
        }
        AttackModel::GaussianNoise { norm } => {
            let dim = worker.x.len();
            let nx = sampler.gaussian(dim, norm);
            let ny = sampler.gaussian(dim, norm);
            worker.x.axpy(1.0, &nx);
            worker.y.axpy(1.0, &ny);
            counters.poisoned_models += 1;
            counters.poisoned_momenta += 1;
            counters.noise_injections += 2;
        }
        AttackModel::MomentumPoison { scale } => {
            // The HierAdMo-specific vector: the model upload stays honest,
            // only the momentum side (Algorithm 1 line 11 and the Eq. 6
            // cosine inputs) is flipped and amplified.
            scale_momenta(worker, -scale);
            counters.poisoned_momenta += 1;
        }
    }
}

fn scale_momenta(worker: &mut WorkerState, k: f32) {
    worker.y.scale_in_place(k);
    worker.v.scale_in_place(k);
    worker.y_accum.scale_in_place(k);
    worker.v_accum.scale_in_place(k);
}

/// Advances `sampler` past one [`corrupt_upload`] call of model dimension
/// `dim` without touching worker state — the replay path used when a
/// checkpointed run fast-forwards to its resume point.
pub fn replay_upload(dim: usize, attack: &AttackModel, sampler: &mut AdversarySampler) {
    if let AttackModel::GaussianNoise { .. } = *attack {
        sampler.skip_gaussian(dim);
        sampler.skip_gaussian(dim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieradmo_tensor::Vector;

    fn worker() -> WorkerState {
        let mut w = WorkerState::new(&Vector::from(vec![1.0, -2.0, 3.0]));
        w.y = Vector::from(vec![0.5, 0.5, 0.5]);
        w.v = Vector::from(vec![0.1, 0.2, 0.3]);
        w.grad_accum = Vector::from(vec![1.0, 1.0, 1.0]);
        w.y_accum = Vector::from(vec![2.0, 2.0, 2.0]);
        w.v_accum = Vector::from(vec![3.0, 3.0, 3.0]);
        w
    }

    #[test]
    fn sign_flip_negates_and_scales_everything() {
        let mut w = worker();
        let mut s = AdversarySampler::from_stream(1, 0);
        let mut c = AdversaryCounters::default();
        corrupt_upload(
            &mut w,
            &AttackModel::SignFlip { scale: 2.0 },
            &mut s,
            &mut c,
        );
        assert_eq!(w.x.as_slice(), &[-2.0, 4.0, -6.0]);
        assert_eq!(w.y.as_slice(), &[-1.0, -1.0, -1.0]);
        assert_eq!(w.v_accum.as_slice(), &[-6.0, -6.0, -6.0]);
        assert_eq!(c.poisoned_uploads, 1);
        assert_eq!(c.poisoned_models, 1);
        assert_eq!(c.poisoned_momenta, 1);
        assert_eq!(c.noise_injections, 0);
    }

    #[test]
    fn momentum_poison_leaves_the_model_honest() {
        let mut w = worker();
        let mut s = AdversarySampler::from_stream(1, 0);
        let mut c = AdversaryCounters::default();
        corrupt_upload(
            &mut w,
            &AttackModel::MomentumPoison { scale: 3.0 },
            &mut s,
            &mut c,
        );
        assert_eq!(w.x.as_slice(), &[1.0, -2.0, 3.0], "model must stay honest");
        assert_eq!(
            w.grad_accum.as_slice(),
            &[1.0, 1.0, 1.0],
            "gradient accumulator must stay honest"
        );
        assert_eq!(w.y.as_slice(), &[-1.5, -1.5, -1.5]);
        assert_eq!(w.y_accum.as_slice(), &[-6.0, -6.0, -6.0]);
        assert_eq!(c.poisoned_models, 0);
        assert_eq!(c.poisoned_momenta, 1);
    }

    #[test]
    fn gaussian_noise_is_deterministic_per_stream_and_calibrated() {
        let attack = AttackModel::GaussianNoise { norm: 4.0 };
        let run = |stream: u64| {
            let mut w = worker();
            let mut s = AdversarySampler::from_stream(7, stream);
            let mut c = AdversaryCounters::default();
            corrupt_upload(&mut w, &attack, &mut s, &mut c);
            (w, c)
        };
        let (a, ca) = run(0);
        let (b, _) = run(0);
        assert_eq!(a.x, b.x, "same stream must inject identical noise");
        assert_eq!(a.y, b.y);
        let (other, _) = run(1);
        assert_ne!(a.x, other.x, "distinct streams must decorrelate");
        assert_eq!(ca.noise_injections, 2);
        let honest = worker();
        assert!((a.x.distance(&honest.x) - 4.0).abs() < 1e-3);
        assert_eq!(a.v, honest.v, "noise attack leaves the velocity alone");
    }

    #[test]
    fn replay_advances_the_stream_exactly_like_a_real_upload() {
        let attack = AttackModel::GaussianNoise { norm: 2.0 };
        let mut live = AdversarySampler::from_stream(5, 2);
        let mut replayed = AdversarySampler::from_stream(5, 2);

        let mut w = worker();
        let mut c = AdversaryCounters::default();
        corrupt_upload(&mut w, &attack, &mut live, &mut c);
        replay_upload(3, &attack, &mut replayed);
        assert_eq!(
            live.gaussian(3, 1.0),
            replayed.gaussian(3, 1.0),
            "replay must consume the same entropy as a live corruption"
        );

        // Deterministic attacks consume nothing, live or replayed.
        let mut before = AdversarySampler::from_stream(5, 2);
        let mut after = AdversarySampler::from_stream(5, 2);
        corrupt_upload(
            &mut worker(),
            &AttackModel::SignFlip { scale: 1.0 },
            &mut after,
            &mut c,
        );
        replay_upload(3, &AttackModel::MomentumPoison { scale: 1.0 }, &mut after);
        assert_eq!(before.gaussian(3, 1.0), after.gaussian(3, 1.0));
    }
}
