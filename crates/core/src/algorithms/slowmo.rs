//! SlowMo (Wang et al., ICLR 2020 [20]): slow server momentum over local
//! SGD, with an explicit slow learning rate.

use hieradmo_tensor::Vector;

use crate::state::{EdgeView, FlState, WorkerState};
use crate::strategy::{Strategy, Tier};

use super::sgd_local_step;

/// Two-tier FL with *slow momentum*:
///
/// `v ← β·v + Δ`, `x ← x_prev − α·v`, where `Δ = x_prev − x̄` is the round's
/// pseudo-gradient and `α` the slow learning rate (SlowMo's `α = 1`
/// recovers FedMom's update).
///
/// # Example
///
/// ```
/// use hieradmo_core::algorithms::SlowMo;
/// use hieradmo_core::Strategy;
///
/// let algo = SlowMo::new(0.01, 0.5, 1.0);
/// assert_eq!(algo.name(), "SlowMo");
/// ```
#[derive(Debug, Clone)]
pub struct SlowMo {
    eta: f32,
    beta: f32,
    alpha: f32,
}

impl SlowMo {
    /// Creates SlowMo with worker learning rate `eta`, slow momentum
    /// factor `beta` and slow learning rate `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0`, `beta ∉ [0, 1)`, or `alpha <= 0`.
    pub fn new(eta: f32, beta: f32, alpha: f32) -> Self {
        assert!(eta > 0.0, "eta must be positive, got {eta}");
        assert!(
            (0.0..1.0).contains(&beta),
            "beta must be in [0,1), got {beta}"
        );
        assert!(alpha > 0.0, "alpha must be positive, got {alpha}");
        SlowMo { eta, beta, alpha }
    }
}

impl Strategy for SlowMo {
    fn name(&self) -> &'static str {
        "SlowMo"
    }

    fn tier(&self) -> Tier {
        Tier::Two
    }

    fn local_step(
        &self,
        _t: usize,
        worker: &mut WorkerState,
        grad: &mut dyn FnMut(&Vector, &mut Vector),
    ) {
        sgd_local_step(self.eta, worker, grad);
    }

    fn edge_aggregate(&self, _k: usize, _view: &mut EdgeView<'_>) {}

    fn cloud_aggregate(&self, _p: usize, state: &mut FlState) {
        let x_avg = state.average_worker_models();
        let delta = &state.cloud.x_prev - &x_avg;
        state.cloud.v.scale_in_place(self.beta);
        state.cloud.v += &delta;
        let mut x_new = state.cloud.x_prev.clone();
        x_new.axpy(-self.alpha, &state.cloud.v);
        state.cloud.x_prev = x_new.clone();
        state.cloud.x_plus = x_new.clone();
        state.for_all_workers(|w| w.x = x_new.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{quick_cfg, quick_run};
    use crate::RunConfig;
    use hieradmo_topology::Hierarchy;

    #[test]
    fn learns_the_small_problem() {
        let cfg = RunConfig {
            pi: 1,
            tau: 10,
            ..quick_cfg()
        };
        let res = quick_run(&SlowMo::new(0.05, 0.5, 1.0), Hierarchy::two_tier(4), cfg);
        assert!(res.curve.final_accuracy().unwrap() > 0.55);
    }

    #[test]
    fn alpha_one_matches_fedmom_exactly() {
        use super::super::FedMom;
        let cfg = RunConfig {
            pi: 1,
            tau: 5,
            total_iters: 100,
            ..quick_cfg()
        };
        let sm = quick_run(
            &SlowMo::new(0.05, 0.5, 1.0),
            Hierarchy::two_tier(4),
            cfg.clone(),
        );
        let fm = quick_run(&FedMom::new(0.05, 0.5), Hierarchy::two_tier(4), cfg);
        // Same update rule and same seeds ⇒ identical curves.
        assert_eq!(sm.curve, fm.curve);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_zero_alpha() {
        let _ = SlowMo::new(0.05, 0.5, 0.0);
    }
}
