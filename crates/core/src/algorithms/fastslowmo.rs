//! FastSlowMo (Yang et al., IEEE TAI 2022 [23]): *combined* worker and
//! aggregator momenta in two-tier FL — the closest two-tier relative of
//! HierAdMo.

use hieradmo_tensor::Vector;

use crate::state::{EdgeView, FlState, WorkerState};
use crate::strategy::{Strategy, Tier};

use super::nag_local_step;

/// Two-tier FL with fast (worker NAG) and slow (server) momenta.
///
/// Workers run NAG locally; at every aggregation the server averages both
/// model and worker momentum (the "fast" state), then applies a slow
/// momentum step over the averaged model: `u ← β·u + (x_prev − x̄)`,
/// `x ← x_prev − u`.
///
/// # Example
///
/// ```
/// use hieradmo_core::algorithms::FastSlowMo;
/// use hieradmo_core::Strategy;
///
/// let algo = FastSlowMo::new(0.01, 0.5, 0.5);
/// assert_eq!(algo.name(), "FastSlowMo");
/// ```
#[derive(Debug, Clone)]
pub struct FastSlowMo {
    eta: f32,
    gamma: f32,
    beta: f32,
}

impl FastSlowMo {
    /// Creates FastSlowMo with learning rate `eta`, worker momentum
    /// `gamma`, and server momentum `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0` or either momentum factor is outside `[0, 1)`.
    pub fn new(eta: f32, gamma: f32, beta: f32) -> Self {
        assert!(eta > 0.0, "eta must be positive, got {eta}");
        assert!(
            (0.0..1.0).contains(&gamma),
            "gamma must be in [0,1), got {gamma}"
        );
        assert!(
            (0.0..1.0).contains(&beta),
            "beta must be in [0,1), got {beta}"
        );
        FastSlowMo { eta, gamma, beta }
    }
}

impl Strategy for FastSlowMo {
    fn name(&self) -> &'static str {
        "FastSlowMo"
    }

    fn tier(&self) -> Tier {
        Tier::Two
    }

    fn local_step(
        &self,
        _t: usize,
        worker: &mut WorkerState,
        grad: &mut dyn FnMut(&Vector, &mut Vector),
    ) {
        nag_local_step(self.eta, self.gamma, worker, grad);
    }

    fn edge_aggregate(&self, _k: usize, _view: &mut EdgeView<'_>) {}

    fn cloud_aggregate(&self, _p: usize, state: &mut FlState) {
        // Fast state: aggregate model and worker momentum — both worker
        // uploads, so both route through the robust rule.
        let x_avg = state.aggregate(
            state
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| (state.weights.worker_in_total(i), &w.x)),
        );
        let y_avg = state.aggregate(
            state
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| (state.weights.worker_in_total(i), &w.y)),
        );
        // Slow momentum over the averaged model.
        let delta = &state.cloud.x_prev - &x_avg;
        state.cloud.v.scale_in_place(self.beta);
        state.cloud.v += &delta;
        let mut x_new = state.cloud.x_prev.clone();
        x_new -= &state.cloud.v;
        state.cloud.x_prev = x_new.clone();
        state.cloud.x_plus = x_new.clone();
        state.cloud.y_plus = y_avg.clone();
        state.for_all_workers(|w| {
            w.x = x_new.clone();
            w.y = y_avg.clone();
            w.reset_accumulators();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{quick_cfg, quick_run};
    use crate::RunConfig;
    use hieradmo_topology::Hierarchy;

    #[test]
    fn learns_the_small_problem() {
        let cfg = RunConfig {
            pi: 1,
            tau: 10,
            ..quick_cfg()
        };
        let res = quick_run(
            &FastSlowMo::new(0.05, 0.5, 0.5),
            Hierarchy::two_tier(4),
            cfg,
        );
        assert!(res.curve.final_accuracy().unwrap() > 0.6);
    }

    #[test]
    fn zero_beta_matches_fednag() {
        use super::super::FedNag;
        // β = 0 removes the slow momentum: x_new = x̄ and y is averaged —
        // exactly FedNAG's aggregation.
        let cfg = RunConfig {
            pi: 1,
            tau: 5,
            total_iters: 100,
            ..quick_cfg()
        };
        let fsm = quick_run(
            &FastSlowMo::new(0.05, 0.5, 0.0),
            Hierarchy::two_tier(4),
            cfg.clone(),
        );
        let nag = quick_run(&FedNag::new(0.05, 0.5), Hierarchy::two_tier(4), cfg);
        // x_prev − (x_prev − x̄) equals x̄ only up to float rounding, so the
        // curves agree to tolerance rather than bit-exactly.
        for (a, b) in fsm.curve.points().iter().zip(nag.curve.points()) {
            assert_eq!(a.iteration, b.iteration);
            assert!((a.train_loss - b.train_loss).abs() < 1e-4);
            assert!((a.test_accuracy - b.test_accuracy).abs() < 0.02);
        }
    }
}
