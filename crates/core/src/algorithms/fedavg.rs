//! FedAvg (McMahan et al., AISTATS 2017 [4]): the classic two-tier
//! baseline — local SGD with periodic global averaging.

use hieradmo_tensor::Vector;

use crate::state::{EdgeView, FlState, WorkerState};
use crate::strategy::{Strategy, Tier};

use super::sgd_local_step;

/// Two-tier FedAvg.
///
/// Runs on [`hieradmo_topology::Hierarchy::two_tier`] with `π = 1`; the
/// aggregation fires every `τ` iterations (`τ = τ₃·π₃` of the compared
/// three-tier run, per the paper's fairness rule).
///
/// # Example
///
/// ```
/// use hieradmo_core::algorithms::FedAvg;
/// use hieradmo_core::strategy::Tier;
/// use hieradmo_core::Strategy;
///
/// let algo = FedAvg::new(0.01);
/// assert_eq!(algo.tier(), Tier::Two);
/// ```
#[derive(Debug, Clone)]
pub struct FedAvg {
    eta: f32,
}

impl FedAvg {
    /// Creates FedAvg with learning rate `eta`.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0`.
    pub fn new(eta: f32) -> Self {
        assert!(eta > 0.0, "eta must be positive, got {eta}");
        FedAvg { eta }
    }
}

impl Strategy for FedAvg {
    fn name(&self) -> &'static str {
        "FedAvg"
    }

    fn tier(&self) -> Tier {
        Tier::Two
    }

    fn local_step(
        &self,
        _t: usize,
        worker: &mut WorkerState,
        grad: &mut dyn FnMut(&Vector, &mut Vector),
    ) {
        sgd_local_step(self.eta, worker, grad);
    }

    fn edge_aggregate(&self, _k: usize, _view: &mut EdgeView<'_>) {
        // Two-tier: the single "edge" is the cloud; work happens in
        // cloud_aggregate, which fires at the same tick (π = 1).
    }

    fn cloud_aggregate(&self, _p: usize, state: &mut FlState) {
        let avg = state.average_worker_models();
        state.cloud.x_plus = avg.clone();
        state.for_all_workers(|w| w.x = avg.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{quick_cfg, quick_run};
    use crate::RunConfig;
    use hieradmo_topology::Hierarchy;

    #[test]
    fn learns_the_small_problem() {
        let cfg = RunConfig {
            pi: 1,
            tau: 10,
            ..quick_cfg()
        };
        let res = quick_run(&FedAvg::new(0.05), Hierarchy::two_tier(4), cfg);
        assert!(res.curve.final_accuracy().unwrap() > 0.55);
    }

    #[test]
    fn rejects_three_tier_topology() {
        use crate::algorithms::testutil::small_problem;
        use crate::driver::run;
        let (_, test, shards, model) = small_problem(4);
        let cfg = RunConfig {
            pi: 1,
            tau: 10,
            ..quick_cfg()
        };
        let err = run(
            &FedAvg::new(0.05),
            &model,
            &Hierarchy::balanced(2, 2),
            &shards,
            &test,
            &cfg,
        )
        .unwrap_err();
        assert!(err.to_string().contains("two-tier"));
    }
}
