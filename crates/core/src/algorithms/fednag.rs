//! FedNAG (Yang et al., TPDS 2022 [21]): federated learning with Nesterov
//! accelerated gradient — *worker momentum only*, two-tier.

use hieradmo_tensor::Vector;

use crate::state::{EdgeView, FlState, WorkerState};
use crate::strategy::{Strategy, Tier};

use super::nag_local_step;

/// Two-tier FL with NAG at the workers and plain weighted averaging of
/// both model `x` and momentum `y` at the aggregator.
///
/// # Example
///
/// ```
/// use hieradmo_core::algorithms::FedNag;
/// use hieradmo_core::Strategy;
///
/// let algo = FedNag::new(0.01, 0.5);
/// assert_eq!(algo.name(), "FedNAG");
/// ```
#[derive(Debug, Clone)]
pub struct FedNag {
    eta: f32,
    gamma: f32,
}

impl FedNag {
    /// Creates FedNAG with learning rate `eta` and worker momentum `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0` or `gamma ∉ [0, 1)`.
    pub fn new(eta: f32, gamma: f32) -> Self {
        assert!(eta > 0.0, "eta must be positive, got {eta}");
        assert!(
            (0.0..1.0).contains(&gamma),
            "gamma must be in [0,1), got {gamma}"
        );
        FedNag { eta, gamma }
    }
}

impl Strategy for FedNag {
    fn name(&self) -> &'static str {
        "FedNAG"
    }

    fn tier(&self) -> Tier {
        Tier::Two
    }

    fn local_step(
        &self,
        _t: usize,
        worker: &mut WorkerState,
        grad: &mut dyn FnMut(&Vector, &mut Vector),
    ) {
        nag_local_step(self.eta, self.gamma, worker, grad);
    }

    fn edge_aggregate(&self, _k: usize, _view: &mut EdgeView<'_>) {}

    fn cloud_aggregate(&self, _p: usize, state: &mut FlState) {
        // FedNAG aggregates both the model and the momentum state — both
        // are worker uploads, so both route through the robust rule.
        let x_avg = state.aggregate(
            state
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| (state.weights.worker_in_total(i), &w.x)),
        );
        let y_avg = state.aggregate(
            state
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| (state.weights.worker_in_total(i), &w.y)),
        );
        state.cloud.x_plus = x_avg.clone();
        state.cloud.y_plus = y_avg.clone();
        state.for_all_workers(|w| {
            w.x = x_avg.clone();
            w.y = y_avg.clone();
            w.reset_accumulators();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{quick_cfg, quick_run};
    use crate::RunConfig;
    use hieradmo_topology::Hierarchy;

    #[test]
    fn learns_the_small_problem() {
        let cfg = RunConfig {
            pi: 1,
            tau: 10,
            ..quick_cfg()
        };
        let res = quick_run(&FedNag::new(0.05, 0.5), Hierarchy::two_tier(4), cfg);
        assert!(res.curve.final_accuracy().unwrap() > 0.6);
    }

    #[test]
    fn beats_fedavg_on_average_loss() {
        use super::super::FedAvg;
        // Momentum should not be worse on this smooth problem.
        let cfg = RunConfig {
            pi: 1,
            tau: 10,
            ..quick_cfg()
        };
        let nag = quick_run(&FedNag::new(0.05, 0.5), Hierarchy::two_tier(4), cfg.clone());
        let avg = quick_run(&FedAvg::new(0.05), Hierarchy::two_tier(4), cfg);
        let nag_loss = nag.curve.final_train_loss().unwrap();
        let avg_loss = avg.curve.final_train_loss().unwrap();
        assert!(
            nag_loss <= avg_loss * 1.2,
            "FedNAG ({nag_loss}) should be comparable or better than FedAvg ({avg_loss})"
        );
    }
}
