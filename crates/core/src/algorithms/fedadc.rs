//! FedADC (Ozfatura et al., ISIT 2021 [24]): accelerated federated
//! learning with *drift control* — server momentum embedded into every
//! local step so local updates stay aligned with the global direction.

use hieradmo_tensor::Vector;

use crate::state::{EdgeView, FlState, WorkerState};
use crate::strategy::{Strategy, Tier};

/// Two-tier FL with drift-controlled local momentum.
///
/// Each worker runs heavy-ball steps `v ← β·v + g`, `x ← x − η·v`; at every
/// aggregation the server averages the velocities into a global momentum
/// and re-seeds every worker's `v` with it, so the next round's local
/// updates start from the *global* direction instead of a drifted local
/// one (the drift-control mechanism).
///
/// # Example
///
/// ```
/// use hieradmo_core::algorithms::FedAdc;
/// use hieradmo_core::Strategy;
///
/// let algo = FedAdc::new(0.01, 0.5);
/// assert_eq!(algo.name(), "FedADC");
/// ```
#[derive(Debug, Clone)]
pub struct FedAdc {
    eta: f32,
    beta: f32,
}

impl FedAdc {
    /// Creates FedADC with learning rate `eta` and momentum factor `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0` or `beta ∉ [0, 1)`.
    pub fn new(eta: f32, beta: f32) -> Self {
        assert!(eta > 0.0, "eta must be positive, got {eta}");
        assert!(
            (0.0..1.0).contains(&beta),
            "beta must be in [0,1), got {beta}"
        );
        FedAdc { eta, beta }
    }
}

impl Strategy for FedAdc {
    fn name(&self) -> &'static str {
        "FedADC"
    }

    fn tier(&self) -> Tier {
        Tier::Two
    }

    fn local_step(
        &self,
        _t: usize,
        worker: &mut WorkerState,
        grad: &mut dyn FnMut(&Vector, &mut Vector),
    ) {
        let mut g = std::mem::take(&mut worker.scratch);
        grad(&worker.x, &mut g);
        worker.v.scale_in_place(self.beta);
        worker.v += &g;
        worker.x.axpy(-self.eta, &worker.v);
        worker.scratch = g;
    }

    fn edge_aggregate(&self, _k: usize, _view: &mut EdgeView<'_>) {}

    fn cloud_aggregate(&self, _p: usize, state: &mut FlState) {
        let x_avg = state.aggregate(
            state
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| (state.weights.worker_in_total(i), &w.x)),
        );
        let v_avg = state.aggregate(
            state
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| (state.weights.worker_in_total(i), &w.v)),
        );
        state.cloud.x_plus = x_avg.clone();
        state.cloud.v = v_avg.clone();
        state.for_all_workers(|w| {
            w.x = x_avg.clone();
            w.v = v_avg.clone();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{quick_cfg, quick_run};
    use crate::RunConfig;
    use hieradmo_topology::Hierarchy;

    #[test]
    fn learns_the_small_problem() {
        let cfg = RunConfig {
            pi: 1,
            tau: 10,
            ..quick_cfg()
        };
        let res = quick_run(&FedAdc::new(0.05, 0.5), Hierarchy::two_tier(4), cfg);
        assert!(res.curve.final_accuracy().unwrap() > 0.55);
    }

    #[test]
    fn velocities_are_reseeded_at_aggregation() {
        use hieradmo_topology::Weights;
        let h = Hierarchy::two_tier(2);
        let w = Weights::uniform(&h);
        let mut state = FlState::new(h, w, &Vector::zeros(2));
        state.workers[0].v = Vector::from(vec![1.0, 0.0]);
        state.workers[1].v = Vector::from(vec![0.0, 1.0]);
        let adc = FedAdc::new(0.1, 0.5);
        adc.cloud_aggregate(1, &mut state);
        for w in &state.workers {
            assert_eq!(w.v.as_slice(), &[0.5, 0.5]);
        }
    }
}
