//! The paper's algorithm and all ten evaluation baselines.
//!
//! Categories follow Section V-B:
//!
//! 1. **Three-tier with momentum**: [`HierAdMo`] (adaptive `γℓ`, the
//!    contribution) and HierAdMo-R ([`HierAdMo::reduced`], fixed `γℓ`).
//! 2. **Three-tier without momentum**: [`HierFavg`], [`Cfl`].
//! 3. **Two-tier with momentum**: [`FastSlowMo`], [`FedAdc`], [`FedNag`],
//!    [`FedMom`], [`SlowMo`], [`Mime`].
//! 4. **Two-tier without momentum**: [`FedAvg`].
//!
//! All baselines are re-implemented from their original papers' update
//! rules at the level of detail the comparison requires (see each type's
//! docs and DESIGN.md §4 for the two role-approximations, CFL and Mime).

mod cfl;
mod fastslowmo;
mod fedadc;
mod fedavg;
mod fedmom;
mod fednag;
mod hieradmo;
mod hierfavg;
mod mime;
mod slowmo;

pub use cfl::Cfl;
pub use fastslowmo::FastSlowMo;
pub use fedadc::FedAdc;
pub use fedavg::FedAvg;
pub use fedmom::FedMom;
pub use fednag::FedNag;
pub use hieradmo::{GammaMode, HierAdMo};
pub use hierfavg::HierFavg;
pub use mime::Mime;
pub use slowmo::SlowMo;

use hieradmo_tensor::Vector;

use crate::state::WorkerState;
use crate::strategy::Strategy;

/// Plain SGD local step: `x ← x − η·∇F(x)` (no momentum, used by FedAvg,
/// HierFAVG, CFL). Allocation-free: the gradient lands in the worker's
/// scratch buffer.
pub(crate) fn sgd_local_step(
    eta: f32,
    worker: &mut WorkerState,
    grad: &mut dyn FnMut(&Vector, &mut Vector),
) {
    let mut g = std::mem::take(&mut worker.scratch);
    grad(&worker.x, &mut g);
    worker.x.axpy(-eta, &g);
    worker.scratch = g;
}

/// Worker NAG step (Algorithm 1 lines 5–6) with edge-interval accumulation
/// (line 9's sums):
///
/// ```text
/// y_t = x_{t−1} − η ∇F(x_{t−1})
/// x_t = y_t + γ (y_t − y_{t−1})
/// ```
///
/// Also maintains `v = y_t − y_{t−1}`, the velocity form of Appendix A
/// (Eqs. 24–25).
///
/// Allocation-free: buffers rotate through the worker's own state (`v`
/// briefly holds `y_t`, then the previous `y` is overwritten in place).
/// Every per-element float expression matches the textbook clone-based
/// formulation, so the rewrite is bitwise-neutral.
pub(crate) fn nag_local_step(
    eta: f32,
    gamma: f32,
    worker: &mut WorkerState,
    grad: &mut dyn FnMut(&Vector, &mut Vector),
) {
    let mut g = std::mem::take(&mut worker.scratch);
    grad(&worker.x, &mut g);
    // Accumulate Σ ∇F_{i,ℓ}(x^t) and Σ y^t over the edge interval
    // *before* updating (the sums run over t = (k−1)τ … kτ−1).
    worker.grad_accum += &g;
    worker.y_accum += &worker.y;
    worker.steps += 1;

    // v's buffer becomes y_t = x − η·g …
    worker.v.copy_from(&worker.x);
    worker.v.axpy(-eta, &g);
    // … then swaps into place so v's buffer holds y_{t−1} …
    std::mem::swap(&mut worker.y, &mut worker.v);
    // … which turns into the velocity v = y_t − y_{t−1} in place.
    worker.v.sub_from(&worker.y);
    worker.v_accum += &worker.v;
    // x_t = y_t + γ·v.
    worker.x.copy_from(&worker.y);
    worker.x.axpy(gamma, &worker.v);
    worker.scratch = g;
}

/// All eleven algorithms of Table II with the paper's hyper-parameters,
/// boxed for table-style iteration in experiments.
///
/// `eta`/`gamma`/`gamma_edge` follow the table's setting (`γ = γℓ = 0.5`,
/// `η = 0.01`). The returned order matches the rows of Table II.
pub fn table2_lineup(eta: f32, gamma: f32, gamma_edge: f32) -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(HierAdMo::adaptive(eta, gamma)),
        Box::new(HierAdMo::reduced(eta, gamma, gamma_edge)),
        Box::new(HierFavg::new(eta)),
        Box::new(Cfl::new(eta, 0.75)),
        Box::new(FastSlowMo::new(eta, gamma, gamma_edge)),
        Box::new(FedAdc::new(eta, gamma)),
        Box::new(FedMom::new(eta, gamma)),
        Box::new(SlowMo::new(eta, gamma, 1.0)),
        Box::new(FedNag::new(eta, gamma)),
        Box::new(Mime::new(eta, gamma)),
        Box::new(FedAvg::new(eta)),
    ]
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for algorithm tests: a small separable problem and a
    //! driver invocation helper.

    use hieradmo_data::partition::x_class_partition;
    use hieradmo_data::Dataset;
    use hieradmo_models::{zoo, Sequential};
    use hieradmo_topology::Hierarchy;

    use crate::config::RunConfig;
    use crate::driver::{run, RunResult};
    use crate::strategy::Strategy;

    /// A small 4-class flat classification problem, 2-class non-iid over
    /// `n` workers.
    pub fn small_problem(n_workers: usize) -> (Dataset, Dataset, Vec<Dataset>, Sequential) {
        let spec = hieradmo_data::synthetic::SyntheticSpec {
            num_classes: 4,
            shape: hieradmo_data::FeatureShape::Flat(16),
            noise: 0.3,
            prototype_scale: 1.0,
            max_shift: 0,
            class_group: 1,
        };
        let tt = hieradmo_data::synthetic::generate(&spec, 30, 10, 42);
        let shards = x_class_partition(&tt.train, n_workers, 2, 7);
        let model = zoo::logistic_regression(&tt.train, 3);
        (tt.train, tt.test, shards, model)
    }

    /// Runs a strategy on [`small_problem`] with a short schedule.
    pub fn quick_run(strategy: &dyn Strategy, hierarchy: Hierarchy, cfg: RunConfig) -> RunResult {
        let (_, test, shards, model) = small_problem(hierarchy.num_workers());
        run(strategy, &model, &hierarchy, &shards, &test, &cfg).expect("run should succeed")
    }

    /// Default quick config: η=0.05 for fast convergence on the small
    /// problem.
    pub fn quick_cfg() -> RunConfig {
        RunConfig {
            eta: 0.05,
            tau: 5,
            pi: 2,
            total_iters: 200,
            batch_size: 16,
            eval_every: 50,
            threads: Some(1),
            ..RunConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Tier;

    #[test]
    fn lineup_matches_table2_rows() {
        let lineup = table2_lineup(0.01, 0.5, 0.5);
        let names: Vec<&str> = lineup.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "HierAdMo",
                "HierAdMo-R",
                "HierFAVG",
                "CFL",
                "FastSlowMo",
                "FedADC",
                "FedMom",
                "SlowMo",
                "FedNAG",
                "Mime",
                "FedAvg"
            ]
        );
        // Category split: first four are three-tier, the rest two-tier.
        for s in &lineup[..4] {
            assert_eq!(s.tier(), Tier::Three, "{}", s.name());
        }
        for s in &lineup[4..] {
            assert_eq!(s.tier(), Tier::Two, "{}", s.name());
        }
    }
}
