//! FedMom (Huo et al., 2020 [19]): *aggregator momentum only* — plain
//! local SGD plus server-side momentum over the pseudo-gradient.

use hieradmo_tensor::Vector;

use crate::state::{EdgeView, FlState, WorkerState};
use crate::strategy::{Strategy, Tier};

use super::sgd_local_step;

/// Two-tier FL with server momentum.
///
/// At every aggregation the server forms the pseudo-gradient
/// `Δ = x_prev − x̄` (how far the round moved the average model), updates
/// its momentum `v ← β·v + Δ` and steps `x ← x_prev − v`.
///
/// # Example
///
/// ```
/// use hieradmo_core::algorithms::FedMom;
/// use hieradmo_core::Strategy;
///
/// let algo = FedMom::new(0.01, 0.5);
/// assert_eq!(algo.name(), "FedMom");
/// ```
#[derive(Debug, Clone)]
pub struct FedMom {
    eta: f32,
    beta: f32,
}

impl FedMom {
    /// Creates FedMom with worker learning rate `eta` and server momentum
    /// factor `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0` or `beta ∉ [0, 1)`.
    pub fn new(eta: f32, beta: f32) -> Self {
        assert!(eta > 0.0, "eta must be positive, got {eta}");
        assert!(
            (0.0..1.0).contains(&beta),
            "beta must be in [0,1), got {beta}"
        );
        FedMom { eta, beta }
    }
}

impl Strategy for FedMom {
    fn name(&self) -> &'static str {
        "FedMom"
    }

    fn tier(&self) -> Tier {
        Tier::Two
    }

    fn local_step(
        &self,
        _t: usize,
        worker: &mut WorkerState,
        grad: &mut dyn FnMut(&Vector, &mut Vector),
    ) {
        sgd_local_step(self.eta, worker, grad);
    }

    fn edge_aggregate(&self, _k: usize, _view: &mut EdgeView<'_>) {}

    fn cloud_aggregate(&self, _p: usize, state: &mut FlState) {
        let x_avg = state.average_worker_models();
        // Pseudo-gradient of the round.
        let delta = &state.cloud.x_prev - &x_avg;
        state.cloud.v.scale_in_place(self.beta);
        state.cloud.v += &delta;
        let mut x_new = state.cloud.x_prev.clone();
        x_new -= &state.cloud.v;
        state.cloud.x_prev = x_new.clone();
        state.cloud.x_plus = x_new.clone();
        state.for_all_workers(|w| w.x = x_new.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{quick_cfg, quick_run};
    use crate::RunConfig;
    use hieradmo_topology::Hierarchy;

    #[test]
    fn learns_the_small_problem() {
        let cfg = RunConfig {
            pi: 1,
            tau: 10,
            ..quick_cfg()
        };
        let res = quick_run(&FedMom::new(0.05, 0.5), Hierarchy::two_tier(4), cfg);
        assert!(res.curve.final_accuracy().unwrap() > 0.55);
    }

    #[test]
    fn zero_beta_reduces_to_fedavg() {
        use super::super::FedAvg;
        // With β = 0: v = Δ, x_new = x_prev − (x_prev − x̄) = x̄ exactly.
        let cfg = RunConfig {
            pi: 1,
            tau: 5,
            total_iters: 50,
            ..quick_cfg()
        };
        let fm = quick_run(&FedMom::new(0.05, 0.0), Hierarchy::two_tier(4), cfg.clone());
        let fa = quick_run(&FedAvg::new(0.05), Hierarchy::two_tier(4), cfg);
        let a = fm.curve.final_accuracy().unwrap();
        let b = fa.curve.final_accuracy().unwrap();
        assert!(
            (a - b).abs() < 1e-9,
            "β=0 FedMom ({a}) must equal FedAvg ({b})"
        );
    }
}
