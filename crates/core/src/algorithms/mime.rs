//! Mime (Karimireddy et al., 2020 [22]): mimicking centralized momentum in
//! federated learning by shipping a *server statistic* into local updates.
//!
//! **Substitution note (DESIGN.md §4).** We implement the Mime-lite form:
//! the server maintains a momentum statistic `m` from the clients'
//! aggregated round gradients and distributes it; every local step then
//! uses the *blended* direction `(1−β)·g + β·m` with `m` held fixed within
//! the round. This is the role Mime plays in the paper's comparison (a
//! two-tier method applying server statistics locally).

use hieradmo_tensor::Vector;

use crate::state::{EdgeView, FlState, WorkerState};
use crate::strategy::{Strategy, Tier};

/// Two-tier Mime-style FL.
///
/// # Example
///
/// ```
/// use hieradmo_core::algorithms::Mime;
/// use hieradmo_core::Strategy;
///
/// let algo = Mime::new(0.01, 0.5);
/// assert_eq!(algo.name(), "Mime");
/// ```
#[derive(Debug, Clone)]
pub struct Mime {
    eta: f32,
    beta: f32,
}

impl Mime {
    /// Creates Mime with learning rate `eta` and momentum blend `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0` or `beta ∉ [0, 1)`.
    pub fn new(eta: f32, beta: f32) -> Self {
        assert!(eta > 0.0, "eta must be positive, got {eta}");
        assert!(
            (0.0..1.0).contains(&beta),
            "beta must be in [0,1), got {beta}"
        );
        Mime { eta, beta }
    }
}

impl Strategy for Mime {
    fn name(&self) -> &'static str {
        "Mime"
    }

    fn tier(&self) -> Tier {
        Tier::Two
    }

    fn local_step(
        &self,
        _t: usize,
        worker: &mut WorkerState,
        grad: &mut dyn FnMut(&Vector, &mut Vector),
    ) {
        let mut g = std::mem::take(&mut worker.scratch);
        grad(&worker.x, &mut g);
        // Track the round's gradients for the server statistic update.
        worker.grad_accum += &g;
        worker.steps += 1;
        // Blended local direction: (1−β) g + β m, with m in worker.v
        // (distributed at the last aggregation), formed in place in the
        // scratch buffer — same per-element expressions as the allocating
        // form, so bitwise-neutral.
        g.scale_in_place(1.0 - self.beta);
        g.axpy(self.beta, &worker.v);
        worker.x.axpy(-self.eta, &g);
        worker.scratch = g;
    }

    fn edge_aggregate(&self, _k: usize, _view: &mut EdgeView<'_>) {}

    fn cloud_aggregate(&self, _p: usize, state: &mut FlState) {
        // Mean round gradient across workers: each grad_accum holds the
        // *sum* of the round's mini-batch gradients, so normalize by the
        // counted steps — otherwise the statistic scales with τπ and the
        // blended local direction diverges.
        let g_avg = state
            .aggregate(
                state
                    .workers
                    .iter()
                    .enumerate()
                    .map(|(i, w)| (state.weights.worker_in_total(i), &w.grad_accum)),
            )
            .scaled(1.0 / state.workers[0].steps.max(1) as f32);
        // m ← (1−β)·ḡ + β·m
        state.cloud.v.scale_in_place(self.beta);
        state.cloud.v.axpy(1.0 - self.beta, &g_avg);

        let x_avg = state.average_worker_models();
        state.cloud.x_plus = x_avg.clone();
        let m = state.cloud.v.clone();
        state.for_all_workers(|w| {
            w.x = x_avg.clone();
            w.v = m.clone();
            w.reset_accumulators();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{quick_cfg, quick_run};
    use crate::RunConfig;
    use hieradmo_topology::Hierarchy;

    #[test]
    fn learns_the_small_problem() {
        let cfg = RunConfig {
            pi: 1,
            tau: 10,
            ..quick_cfg()
        };
        let res = quick_run(&Mime::new(0.05, 0.5), Hierarchy::two_tier(4), cfg);
        assert!(res.curve.final_accuracy().unwrap() > 0.5);
    }

    #[test]
    fn statistic_is_distributed_to_workers() {
        use hieradmo_topology::Weights;
        let h = Hierarchy::two_tier(2);
        let w = Weights::uniform(&h);
        let mut state = FlState::new(h, w, &Vector::zeros(2));
        state.workers[0].grad_accum = Vector::from(vec![2.0, 0.0]);
        state.workers[1].grad_accum = Vector::from(vec![0.0, 2.0]);
        state.workers[0].steps = 1;
        state.workers[1].steps = 1;
        let mime = Mime::new(0.1, 0.5);
        mime.cloud_aggregate(1, &mut state);
        // m = 0.5 * mean(grads) = 0.5 * [1, 1].
        for w in &state.workers {
            assert_eq!(w.v.as_slice(), &[0.5, 0.5]);
            assert_eq!(w.grad_accum.as_slice(), &[0.0, 0.0]);
        }
    }
}
