//! HierAdMo (Algorithm 1) — the paper's contribution — and its reduced
//! variant HierAdMo-R (fixed `γℓ`, Theorem 5's comparison point).

use hieradmo_tensor::Vector;

use crate::adaptive::{clamp_gamma, weighted_cosine};
use crate::state::{EdgeView, FlState, WorkerState};
use crate::strategy::{Strategy, Tier};

use super::nag_local_step;

/// How the edge momentum factor `γℓ` is chosen at each edge aggregation.
///
/// **Interpretation note (measured in `EXPERIMENTS.md`).** Eq. 6 pairs
/// `−Σ∇F` with "the momentum" `Σy`, where `y` is the NAG momentum
/// *parameter* — a point in parameter space. Three readings are
/// implemented and measured. The verbatim `Σy` cosine is position-
/// dominated and stays ≤ 0 in practice (mean adapted γℓ ≈ 0.05): edge
/// momentum engages only when provably safe — uniformly stable in every
/// regime we measured, and the default. The two direction-based readings
/// (footnote-1 agreement and gradient alignment) track the best fixed
/// γℓ tightly when edge momentum helps, but both saturate toward the
/// paper's 0.99 cap whenever directions cohere, which diverges in stiff
/// quick-scale regimes (where even fixed γℓ = 0.9 diverges). All three
/// are quantified side by side in the `ablation_adaptive` and `fig2ijk`
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GammaMode {
    /// Online adaptation with Eq. 6 implemented verbatim: the data-weighted
    /// cosine pairs each worker's accumulated negative gradient `−Σ∇F`
    /// with its accumulated momentum-parameter sum `Σyᵗ`. The
    /// position-dominated `Σy` keeps the cosine at or below zero in
    /// practice, so the edge momentum engages only when it is genuinely
    /// safe — measured across every regime in `EXPERIMENTS.md`, this is
    /// the only reading that never diverges while preserving all of the
    /// paper's qualitative results, and it is HierAdMo's default.
    Adaptive,
    /// Footnote-1 *agreement* semantics: each worker's momentum
    /// displacement `Σ(yᵗ − yᵗ⁻¹)` compared to the edge-aggregated
    /// displacement. Tracks the best fixed `γℓ` tightly when edge
    /// momentum helps, but saturates toward the 0.99 cap whenever the
    /// edge's workers move coherently — which diverges in stiff
    /// small-scale regimes (quantified in `EXPERIMENTS.md`).
    AdaptiveAgreement,
    /// Gradient-alignment semantics: each worker's displacement against
    /// its *own* accumulated negative gradient (a self-consistency
    /// signal; saturates on aligned convex descent).
    AdaptiveGradientAlignment,
    /// A fixed factor — the reduced variant HierAdMo-R.
    Fixed(f32),
}

/// Three-tier FL with momentum on both worker and edge level
/// (paper Algorithm 1).
///
/// Every local iteration each worker runs a NAG step (lines 5–6) while
/// accumulating `Σ∇F` and `Σy` over the edge interval (line 9). Every `τ`
/// iterations each edge:
///
/// 1. adapts `γℓ` from the data-weighted cosine between accumulated
///    negative gradients and momenta (lines 10, Eqs. 6–7) — or keeps it
///    fixed in the [`GammaMode::Fixed`] reduced variant;
/// 2. aggregates worker momenta `y_{ℓ−}` (line 11) and re-distributes them
///    (line 14), refining stragglers whose momenta point the wrong way;
/// 3. performs the *edge-level* momentum update over the aggregated model
///    (lines 12–13) and re-distributes the edge model (line 15).
///
/// Every `τπ` iterations the cloud averages `y_{ℓ−}` and `x_{ℓ+}` across
/// edges and re-distributes both all the way down (lines 18–23).
///
/// # Example
///
/// ```
/// use hieradmo_core::algorithms::{GammaMode, HierAdMo};
///
/// let adaptive = HierAdMo::adaptive(0.01, 0.5);
/// let reduced = HierAdMo::reduced(0.01, 0.5, 0.5);
/// assert_eq!(adaptive.gamma_mode(), GammaMode::Adaptive);
/// assert_eq!(reduced.gamma_mode(), GammaMode::Fixed(0.5));
/// ```
#[derive(Debug, Clone)]
pub struct HierAdMo {
    eta: f32,
    gamma: f32,
    mode: GammaMode,
}

impl HierAdMo {
    /// HierAdMo with online-adaptive `γℓ` (Eqs. 6–7 verbatim — see
    /// [`GammaMode::Adaptive`]).
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0` or `gamma ∉ [0, 1)`.
    pub fn adaptive(eta: f32, gamma: f32) -> Self {
        Self::with_mode(eta, gamma, GammaMode::Adaptive)
    }

    /// HierAdMo with the footnote-1 agreement adaptive `γℓ` (see
    /// [`GammaMode::AdaptiveAgreement`]).
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0` or `gamma ∉ [0, 1)`.
    pub fn adaptive_agreement(eta: f32, gamma: f32) -> Self {
        Self::with_mode(eta, gamma, GammaMode::AdaptiveAgreement)
    }

    /// HierAdMo with the gradient-alignment adaptive `γℓ` (see
    /// [`GammaMode::AdaptiveGradientAlignment`]).
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0` or `gamma ∉ [0, 1)`.
    pub fn adaptive_gradient_alignment(eta: f32, gamma: f32) -> Self {
        Self::with_mode(eta, gamma, GammaMode::AdaptiveGradientAlignment)
    }

    /// HierAdMo-R: the reduced variant with fixed `γℓ`.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0`, `gamma ∉ [0, 1)`, or `gamma_edge ∉ [0, 1)`.
    pub fn reduced(eta: f32, gamma: f32, gamma_edge: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&gamma_edge),
            "gamma_edge must be in [0,1), got {gamma_edge}"
        );
        Self::with_mode(eta, gamma, GammaMode::Fixed(gamma_edge))
    }

    fn with_mode(eta: f32, gamma: f32, mode: GammaMode) -> Self {
        assert!(eta > 0.0, "eta must be positive, got {eta}");
        assert!(
            (0.0..1.0).contains(&gamma),
            "gamma must be in [0,1), got {gamma}"
        );
        HierAdMo { eta, gamma, mode }
    }

    /// The configured `γℓ` selection mode.
    pub fn gamma_mode(&self) -> GammaMode {
        self.mode
    }

    /// Worker momentum factor `γ`.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }
}

impl Strategy for HierAdMo {
    fn name(&self) -> &'static str {
        match self.mode {
            GammaMode::Adaptive => "HierAdMo",
            GammaMode::AdaptiveAgreement => "HierAdMo-AG",
            GammaMode::AdaptiveGradientAlignment => "HierAdMo-GA",
            GammaMode::Fixed(_) => "HierAdMo-R",
        }
    }

    fn tier(&self) -> Tier {
        Tier::Three
    }

    fn local_step(
        &self,
        _t: usize,
        worker: &mut WorkerState,
        grad: &mut dyn FnMut(&Vector, &mut Vector),
    ) {
        nag_local_step(self.eta, self.gamma, worker, grad);
    }

    fn edge_aggregate(&self, _k: usize, view: &mut EdgeView<'_>) {
        // Line 10 / Eqs. 6–7: adapt γℓ from the interval's accumulated
        // sums, under the configured cosine basis.
        let cos_theta = match self.mode {
            GammaMode::Adaptive => {
                // Eq. 6 verbatim: −Σ∇F vs the momentum-parameter sum Σy.
                weighted_cosine(
                    view.weighted_workers()
                        .map(|(wt, w)| (wt, &w.grad_accum, &w.y_accum)),
                )
            }
            GammaMode::AdaptiveAgreement => {
                // Footnote-1 agreement: each worker's displacement vs the
                // edge-aggregated displacement.
                let edge_disp = view.average(|w| &w.v_accum);
                view.weighted_workers()
                    .map(|(wt, w)| wt as f32 * w.v_accum.cosine(&edge_disp))
                    .sum()
            }
            GammaMode::AdaptiveGradientAlignment => weighted_cosine(
                view.weighted_workers()
                    .map(|(wt, w)| (wt, &w.grad_accum, &w.v_accum)),
            ),
            GammaMode::Fixed(_) => 0.0,
        };
        let gamma_edge = match self.mode {
            GammaMode::Fixed(g) => g,
            _ => clamp_gamma(cos_theta),
        };

        // Line 11: worker momentum edge aggregation y_{ℓ−}.
        let y_minus = view.average(|w| &w.y);
        // Lines 12–13 fused into one batched traversal:
        //   y_{ℓ+} ← x_{ℓ+}^{(k−1)τ} − Σᵢ wᵢ (x_{ℓ+}^{(k−1)τ} − x_i)
        //          = Σᵢ wᵢ x_i   (weights sum to 1),
        //   x_{ℓ+} ← y_{ℓ+} + γℓ (y_{ℓ+} − y_{ℓ+}^{(k−1)τ}).
        let (y_plus_new, x_plus) = view.average_momentum(|w| &w.x, gamma_edge, &view.state.y_plus);

        let e = &mut *view.state;
        e.y_plus = y_plus_new;
        e.x_plus = x_plus.clone();
        e.y_minus = y_minus.clone();
        e.gamma_edge = gamma_edge;
        e.cos_theta = cos_theta;

        // Lines 14–15: re-distribute y_{ℓ−} and x_{ℓ+} to the workers,
        // and start a fresh accumulation interval.
        view.for_workers(|w| {
            w.y = y_minus.clone();
            w.x = x_plus.clone();
            w.reset_accumulators();
        });
    }

    fn cloud_aggregate(&self, _p: usize, state: &mut FlState) {
        // Lines 18–19: cloud aggregation of worker momenta and edge models.
        let y_cloud = state.cloud_average(|e| &e.y_minus);
        let x_cloud = state.cloud_average(|e| &e.x_plus);
        state.cloud.y_plus = y_cloud.clone();
        state.cloud.x_plus = x_cloud.clone();
        // Lines 20–23: re-distribute to every edge and worker.
        for e in &mut state.edges {
            e.y_minus = y_cloud.clone();
            e.x_plus = x_cloud.clone();
        }
        state.for_all_workers(|w| {
            w.y = y_cloud.clone();
            w.x = x_cloud.clone();
        });
    }

    /// Age-weighted edge aggregation for relaxed-synchrony drivers.
    ///
    /// Two deviations from the synchronous hook, both restricted to the
    /// updates actually received:
    ///
    /// 1. the adaptive-`γℓ` cosine (Eq. 6) is computed only over *fresh*
    ///    workers (`staleness == 0`), with their data weights renormalized
    ///    — stale accumulators describe an older model and would poison the
    ///    agreement signal;
    /// 2. the momentum/model averages down-weight each worker by
    ///    `1/(1 + staleness)`, the standard staleness discount of async FL,
    ///    so a carried-over update decays rather than dominating.
    ///
    /// With an all-zero staleness vector this is exactly
    /// [`Strategy::edge_aggregate`].
    fn edge_aggregate_stale(&self, k: usize, view: &mut EdgeView<'_>, staleness: &[usize]) {
        debug_assert_eq!(staleness.len(), view.num_workers());
        if staleness.iter().all(|&s| s == 0) {
            self.edge_aggregate(k, view);
            return;
        }

        let fresh_weight: f64 = view
            .weighted_workers()
            .zip(staleness)
            .filter(|(_, &s)| s == 0)
            .map(|((wt, _), _)| wt)
            .sum();
        let cos_theta = match self.mode {
            GammaMode::Fixed(_) => 0.0,
            _ if fresh_weight <= 0.0 => 0.0,
            GammaMode::Adaptive => weighted_cosine(
                view.weighted_workers()
                    .zip(staleness)
                    .filter(|(_, &s)| s == 0)
                    .map(|((wt, w), _)| (wt / fresh_weight, &w.grad_accum, &w.y_accum)),
            ),
            GammaMode::AdaptiveAgreement => {
                let edge_disp = view.aggregate(
                    view.weighted_workers()
                        .zip(staleness)
                        .filter(|(_, &s)| s == 0)
                        .map(|((wt, w), _)| (wt, &w.v_accum)),
                );
                view.weighted_workers()
                    .zip(staleness)
                    .filter(|(_, &s)| s == 0)
                    .map(|((wt, w), _)| (wt / fresh_weight) as f32 * w.v_accum.cosine(&edge_disp))
                    .sum()
            }
            GammaMode::AdaptiveGradientAlignment => weighted_cosine(
                view.weighted_workers()
                    .zip(staleness)
                    .filter(|(_, &s)| s == 0)
                    .map(|((wt, w), _)| (wt / fresh_weight, &w.grad_accum, &w.v_accum)),
            ),
        };
        let gamma_edge = match self.mode {
            GammaMode::Fixed(g) => g,
            _ => clamp_gamma(cos_theta),
        };

        // Lines 11–13 with the staleness discount folded into the data
        // weights (the aggregator renormalizes internally), routed through
        // the federation's robust aggregation rule.
        let age = |s: usize| 1.0 / (1.0 + s as f64);
        let y_minus = view.aggregate(
            view.weighted_workers()
                .zip(staleness)
                .map(|((wt, w), &s)| (wt * age(s), &w.y)),
        );
        let (y_plus_new, x_plus) = view.aggregate_momentum(
            view.weighted_workers()
                .zip(staleness)
                .map(|((wt, w), &s)| (wt * age(s), &w.x)),
            gamma_edge,
            &view.state.y_plus,
        );

        let e = &mut *view.state;
        e.y_plus = y_plus_new;
        e.x_plus = x_plus.clone();
        e.y_minus = y_minus.clone();
        e.gamma_edge = gamma_edge;
        e.cos_theta = cos_theta;

        view.for_workers(|w| {
            w.y = y_minus.clone();
            w.x = x_plus.clone();
            w.reset_accumulators();
        });
    }

    /// Age-weighted cloud aggregation: edges are down-weighted by
    /// `1/(1 + staleness)` before the lines 18–19 averages; distribution is
    /// unchanged. All-zero staleness is exactly
    /// [`Strategy::cloud_aggregate`].
    fn cloud_aggregate_stale(&self, p: usize, state: &mut FlState, staleness: &[usize]) {
        debug_assert_eq!(staleness.len(), state.edges.len());
        if staleness.iter().all(|&s| s == 0) {
            self.cloud_aggregate(p, state);
            return;
        }
        let age = |s: usize| 1.0 / (1.0 + s as f64);
        let y_cloud = state.aggregate(state.edges.iter().enumerate().map(|(l, e)| {
            (
                state.weights.edge_in_total(l) * age(staleness[l]),
                &e.y_minus,
            )
        }));
        let x_cloud = state.aggregate(state.edges.iter().enumerate().map(|(l, e)| {
            (
                state.weights.edge_in_total(l) * age(staleness[l]),
                &e.x_plus,
            )
        }));
        state.cloud.y_plus = y_cloud.clone();
        state.cloud.x_plus = x_cloud.clone();
        for e in &mut state.edges {
            e.y_minus = y_cloud.clone();
            e.x_plus = x_cloud.clone();
        }
        state.for_all_workers(|w| {
            w.y = y_cloud.clone();
            w.x = x_cloud.clone();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{quick_cfg, quick_run};
    use hieradmo_topology::Hierarchy;

    #[test]
    fn learns_the_small_problem() {
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let res = quick_run(&algo, Hierarchy::balanced(2, 2), quick_cfg());
        let acc = res.curve.final_accuracy().unwrap();
        assert!(acc > 0.7, "HierAdMo should learn: acc = {acc}");
    }

    #[test]
    fn reduced_variant_uses_fixed_gamma() {
        let algo = HierAdMo::reduced(0.05, 0.5, 0.3);
        let res = quick_run(&algo, Hierarchy::balanced(2, 2), quick_cfg());
        // Every recorded edge γℓ must equal the fixed value.
        assert!(!res.gamma_trace.is_empty());
        for &(_, g) in &res.gamma_trace {
            assert_eq!(g, 0.3);
        }
    }

    #[test]
    fn adaptive_gammas_respect_the_clamp() {
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let res = quick_run(&algo, Hierarchy::balanced(2, 2), quick_cfg());
        for &(_, g) in &res.gamma_trace {
            assert!((0.0..=0.99).contains(&g), "γℓ = {g} outside [0, 0.99]");
        }
    }

    #[test]
    fn workers_synchronize_at_edge_aggregation() {
        use crate::algorithms::testutil::small_problem;
        use crate::driver::run;
        use crate::RunConfig;
        // One edge interval exactly: after the run's single edge+cloud
        // aggregation, all workers hold the same model.
        let (_, test, shards, model) = small_problem(4);
        let cfg = RunConfig {
            eta: 0.05,
            tau: 3,
            pi: 1,
            total_iters: 3,
            eval_every: 3,
            threads: Some(1),
            ..RunConfig::default()
        };
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let h = Hierarchy::balanced(2, 2);
        let res = run(&algo, &model, &h, &shards, &test, &cfg).unwrap();
        assert_eq!(res.curve.len(), 1);
    }

    fn toy_state() -> crate::state::FlState {
        use hieradmo_topology::Weights;
        let h = Hierarchy::balanced(2, 2);
        let w = Weights::from_samples(&h, &[10, 20, 30, 40]);
        let mut s = crate::state::FlState::new(h, w, &Vector::from(vec![1.0, -1.0, 0.5]));
        for (i, ws) in s.workers.iter_mut().enumerate() {
            let v = i as f32 + 1.0;
            ws.x = Vector::from(vec![v, -v, v * 0.5]);
            ws.y = Vector::from(vec![v * 0.1, v, -v]);
            ws.grad_accum = Vector::from(vec![-v, v * 0.3, 0.2]);
            ws.y_accum = Vector::from(vec![v, -v * 0.2, 0.1]);
            ws.v_accum = Vector::from(vec![0.5, v, -0.25]);
            ws.steps = 3;
        }
        s
    }

    #[test]
    fn stale_hook_with_zero_staleness_matches_synchronous_hook() {
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let mut a = toy_state();
        let mut b = a.clone();
        algo.edge_aggregate(1, &mut a.edge_view(0));
        algo.edge_aggregate_stale(1, &mut b.edge_view(0), &[0, 0]);
        assert_eq!(a.workers, b.workers);
        assert_eq!(a.edges[0], b.edges[0]);
        algo.cloud_aggregate(1, &mut a);
        algo.cloud_aggregate_stale(1, &mut b, &[0, 0]);
        assert_eq!(a.workers, b.workers);
        assert_eq!(a.cloud, b.cloud);
    }

    #[test]
    fn stale_hook_down_weights_old_updates() {
        let algo = HierAdMo::reduced(0.05, 0.5, 0.0);
        let mut fresh = toy_state();
        let mut stale = fresh.clone();
        algo.edge_aggregate_stale(1, &mut fresh.edge_view(0), &[0, 0]);
        algo.edge_aggregate_stale(1, &mut stale.edge_view(0), &[0, 3]);
        // Worker 1 (the heavier shard) is stale: discounting it must pull
        // the aggregate toward worker 0's model.
        let toward_w0 = |s: &crate::state::FlState| {
            let d = &s.edges[0].y_plus - &Vector::from(vec![1.0, -1.0, 0.5]);
            d.norm()
        };
        assert!(
            toward_w0(&stale) < toward_w0(&fresh),
            "staleness discount should shift the edge model toward the fresh worker"
        );
    }

    #[test]
    fn stale_cosine_ignores_stale_workers() {
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let mut s = toy_state();
        // Make worker 1's accumulators pathological; marking it stale must
        // keep the cosine equal to a lone-worker-0 edge.
        s.workers[1].grad_accum = Vector::from(vec![1e6, -1e6, 1e6]);
        s.workers[1].y_accum = Vector::from(vec![-1e6, 1e6, -1e6]);
        // Reference: with worker 1 stale, the renormalized cosine reduces
        // to worker 0's own (−Σ∇F, Σy) cosine at full weight.
        let w0 = &s.workers[0];
        let expected = (-&w0.grad_accum).cosine(&w0.y_accum);
        algo.edge_aggregate_stale(1, &mut s.edge_view(0), &[0, 2]);
        assert!(
            (s.edges[0].cos_theta - expected).abs() < 1e-6,
            "cos {} vs lone-fresh-worker {}",
            s.edges[0].cos_theta,
            expected
        );
    }

    #[test]
    #[should_panic(expected = "gamma must be in [0,1)")]
    fn rejects_gamma_one() {
        let _ = HierAdMo::adaptive(0.01, 1.0);
    }

    #[test]
    #[should_panic(expected = "gamma_edge must be in [0,1)")]
    fn rejects_bad_fixed_gamma() {
        let _ = HierAdMo::reduced(0.01, 0.5, 1.5);
    }
}
