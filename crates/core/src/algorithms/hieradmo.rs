//! HierAdMo (Algorithm 1) — the paper's contribution — and its reduced
//! variant HierAdMo-R (fixed `γℓ`, Theorem 5's comparison point).

use hieradmo_tensor::Vector;

use crate::adaptive::{clamp_gamma, weighted_cosine};
use crate::state::{EdgeView, FlState, WorkerState};
use crate::strategy::{Strategy, Tier};

use super::nag_local_step;

/// How the edge momentum factor `γℓ` is chosen at each edge aggregation.
///
/// **Interpretation note (measured in `EXPERIMENTS.md`).** Eq. 6 pairs
/// `−Σ∇F` with "the momentum" `Σy`, where `y` is the NAG momentum
/// *parameter* — a point in parameter space. Three readings are
/// implemented and measured. The verbatim `Σy` cosine is position-
/// dominated and stays ≤ 0 in practice (mean adapted γℓ ≈ 0.05): edge
/// momentum engages only when provably safe — uniformly stable in every
/// regime we measured, and the default. The two direction-based readings
/// (footnote-1 agreement and gradient alignment) track the best fixed
/// γℓ tightly when edge momentum helps, but both saturate toward the
/// paper's 0.99 cap whenever directions cohere, which diverges in stiff
/// quick-scale regimes (where even fixed γℓ = 0.9 diverges). All three
/// are quantified side by side in the `ablation_adaptive` and `fig2ijk`
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GammaMode {
    /// Online adaptation with Eq. 6 implemented verbatim: the data-weighted
    /// cosine pairs each worker's accumulated negative gradient `−Σ∇F`
    /// with its accumulated momentum-parameter sum `Σyᵗ`. The
    /// position-dominated `Σy` keeps the cosine at or below zero in
    /// practice, so the edge momentum engages only when it is genuinely
    /// safe — measured across every regime in `EXPERIMENTS.md`, this is
    /// the only reading that never diverges while preserving all of the
    /// paper's qualitative results, and it is HierAdMo's default.
    Adaptive,
    /// Footnote-1 *agreement* semantics: each worker's momentum
    /// displacement `Σ(yᵗ − yᵗ⁻¹)` compared to the edge-aggregated
    /// displacement. Tracks the best fixed `γℓ` tightly when edge
    /// momentum helps, but saturates toward the 0.99 cap whenever the
    /// edge's workers move coherently — which diverges in stiff
    /// small-scale regimes (quantified in `EXPERIMENTS.md`).
    AdaptiveAgreement,
    /// Gradient-alignment semantics: each worker's displacement against
    /// its *own* accumulated negative gradient (a self-consistency
    /// signal; saturates on aligned convex descent).
    AdaptiveGradientAlignment,
    /// A fixed factor — the reduced variant HierAdMo-R.
    Fixed(f32),
}

/// Three-tier FL with momentum on both worker and edge level
/// (paper Algorithm 1).
///
/// Every local iteration each worker runs a NAG step (lines 5–6) while
/// accumulating `Σ∇F` and `Σy` over the edge interval (line 9). Every `τ`
/// iterations each edge:
///
/// 1. adapts `γℓ` from the data-weighted cosine between accumulated
///    negative gradients and momenta (lines 10, Eqs. 6–7) — or keeps it
///    fixed in the [`GammaMode::Fixed`] reduced variant;
/// 2. aggregates worker momenta `y_{ℓ−}` (line 11) and re-distributes them
///    (line 14), refining stragglers whose momenta point the wrong way;
/// 3. performs the *edge-level* momentum update over the aggregated model
///    (lines 12–13) and re-distributes the edge model (line 15).
///
/// Every `τπ` iterations the cloud averages `y_{ℓ−}` and `x_{ℓ+}` across
/// edges and re-distributes both all the way down (lines 18–23).
///
/// # Example
///
/// ```
/// use hieradmo_core::algorithms::{GammaMode, HierAdMo};
///
/// let adaptive = HierAdMo::adaptive(0.01, 0.5);
/// let reduced = HierAdMo::reduced(0.01, 0.5, 0.5);
/// assert_eq!(adaptive.gamma_mode(), GammaMode::Adaptive);
/// assert_eq!(reduced.gamma_mode(), GammaMode::Fixed(0.5));
/// ```
#[derive(Debug, Clone)]
pub struct HierAdMo {
    eta: f32,
    gamma: f32,
    mode: GammaMode,
}

impl HierAdMo {
    /// HierAdMo with online-adaptive `γℓ` (Eqs. 6–7 verbatim — see
    /// [`GammaMode::Adaptive`]).
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0` or `gamma ∉ [0, 1)`.
    pub fn adaptive(eta: f32, gamma: f32) -> Self {
        Self::with_mode(eta, gamma, GammaMode::Adaptive)
    }

    /// HierAdMo with the footnote-1 agreement adaptive `γℓ` (see
    /// [`GammaMode::AdaptiveAgreement`]).
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0` or `gamma ∉ [0, 1)`.
    pub fn adaptive_agreement(eta: f32, gamma: f32) -> Self {
        Self::with_mode(eta, gamma, GammaMode::AdaptiveAgreement)
    }

    /// HierAdMo with the gradient-alignment adaptive `γℓ` (see
    /// [`GammaMode::AdaptiveGradientAlignment`]).
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0` or `gamma ∉ [0, 1)`.
    pub fn adaptive_gradient_alignment(eta: f32, gamma: f32) -> Self {
        Self::with_mode(eta, gamma, GammaMode::AdaptiveGradientAlignment)
    }

    /// HierAdMo-R: the reduced variant with fixed `γℓ`.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0`, `gamma ∉ [0, 1)`, or `gamma_edge ∉ [0, 1)`.
    pub fn reduced(eta: f32, gamma: f32, gamma_edge: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&gamma_edge),
            "gamma_edge must be in [0,1), got {gamma_edge}"
        );
        Self::with_mode(eta, gamma, GammaMode::Fixed(gamma_edge))
    }

    fn with_mode(eta: f32, gamma: f32, mode: GammaMode) -> Self {
        assert!(eta > 0.0, "eta must be positive, got {eta}");
        assert!(
            (0.0..1.0).contains(&gamma),
            "gamma must be in [0,1), got {gamma}"
        );
        HierAdMo { eta, gamma, mode }
    }

    /// The configured `γℓ` selection mode.
    pub fn gamma_mode(&self) -> GammaMode {
        self.mode
    }

    /// Worker momentum factor `γ`.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }
}

impl Strategy for HierAdMo {
    fn name(&self) -> &'static str {
        match self.mode {
            GammaMode::Adaptive => "HierAdMo",
            GammaMode::AdaptiveAgreement => "HierAdMo-AG",
            GammaMode::AdaptiveGradientAlignment => "HierAdMo-GA",
            GammaMode::Fixed(_) => "HierAdMo-R",
        }
    }

    fn tier(&self) -> Tier {
        Tier::Three
    }

    fn local_step(
        &self,
        _t: usize,
        worker: &mut WorkerState,
        grad: &mut dyn FnMut(&Vector, &mut Vector),
    ) {
        nag_local_step(self.eta, self.gamma, worker, grad);
    }

    fn edge_aggregate(&self, _k: usize, view: &mut EdgeView<'_>) {
        // Line 10 / Eqs. 6–7: adapt γℓ from the interval's accumulated
        // sums, under the configured cosine basis.
        let cos_theta = match self.mode {
            GammaMode::Adaptive => {
                // Eq. 6 verbatim: −Σ∇F vs the momentum-parameter sum Σy.
                weighted_cosine(
                    view.weighted_workers()
                        .map(|(wt, w)| (wt, &w.grad_accum, &w.y_accum)),
                )
            }
            GammaMode::AdaptiveAgreement => {
                // Footnote-1 agreement: each worker's displacement vs the
                // edge-aggregated displacement.
                let edge_disp = view.average(|w| &w.v_accum);
                view.weighted_workers()
                    .map(|(wt, w)| wt as f32 * w.v_accum.cosine(&edge_disp))
                    .sum()
            }
            GammaMode::AdaptiveGradientAlignment => weighted_cosine(
                view.weighted_workers()
                    .map(|(wt, w)| (wt, &w.grad_accum, &w.v_accum)),
            ),
            GammaMode::Fixed(_) => 0.0,
        };
        let gamma_edge = match self.mode {
            GammaMode::Fixed(g) => g,
            _ => clamp_gamma(cos_theta),
        };

        // Line 11: worker momentum edge aggregation y_{ℓ−}.
        let y_minus = view.average(|w| &w.y);
        // Line 12: y_{ℓ+} ← x_{ℓ+}^{(k−1)τ} − Σᵢ wᵢ (x_{ℓ+}^{(k−1)τ} − x_i)
        //        = Σᵢ wᵢ x_i   (weights sum to 1).
        let y_plus_new = view.average(|w| &w.x);
        // Line 13: x_{ℓ+} ← y_{ℓ+} + γℓ (y_{ℓ+} − y_{ℓ+}^{(k−1)τ}).
        let mut x_plus = y_plus_new.clone();
        let delta = &y_plus_new - &view.state.y_plus;
        x_plus.axpy(gamma_edge, &delta);

        let e = &mut *view.state;
        e.y_plus = y_plus_new;
        e.x_plus = x_plus.clone();
        e.y_minus = y_minus.clone();
        e.gamma_edge = gamma_edge;
        e.cos_theta = cos_theta;

        // Lines 14–15: re-distribute y_{ℓ−} and x_{ℓ+} to the workers,
        // and start a fresh accumulation interval.
        view.for_workers(|w| {
            w.y = y_minus.clone();
            w.x = x_plus.clone();
            w.reset_accumulators();
        });
    }

    fn cloud_aggregate(&self, _p: usize, state: &mut FlState) {
        // Lines 18–19: cloud aggregation of worker momenta and edge models.
        let y_cloud = state.cloud_average(|e| &e.y_minus);
        let x_cloud = state.cloud_average(|e| &e.x_plus);
        state.cloud.y = y_cloud.clone();
        state.cloud.x = x_cloud.clone();
        // Lines 20–23: re-distribute to every edge and worker.
        for e in &mut state.edges {
            e.y_minus = y_cloud.clone();
            e.x_plus = x_cloud.clone();
        }
        state.for_all_workers(|w| {
            w.y = y_cloud.clone();
            w.x = x_cloud.clone();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{quick_cfg, quick_run};
    use hieradmo_topology::Hierarchy;

    #[test]
    fn learns_the_small_problem() {
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let res = quick_run(&algo, Hierarchy::balanced(2, 2), quick_cfg());
        let acc = res.curve.final_accuracy().unwrap();
        assert!(acc > 0.7, "HierAdMo should learn: acc = {acc}");
    }

    #[test]
    fn reduced_variant_uses_fixed_gamma() {
        let algo = HierAdMo::reduced(0.05, 0.5, 0.3);
        let res = quick_run(&algo, Hierarchy::balanced(2, 2), quick_cfg());
        // Every recorded edge γℓ must equal the fixed value.
        assert!(!res.gamma_trace.is_empty());
        for &(_, g) in &res.gamma_trace {
            assert_eq!(g, 0.3);
        }
    }

    #[test]
    fn adaptive_gammas_respect_the_clamp() {
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let res = quick_run(&algo, Hierarchy::balanced(2, 2), quick_cfg());
        for &(_, g) in &res.gamma_trace {
            assert!((0.0..=0.99).contains(&g), "γℓ = {g} outside [0, 0.99]");
        }
    }

    #[test]
    fn workers_synchronize_at_edge_aggregation() {
        use crate::algorithms::testutil::small_problem;
        use crate::driver::run;
        use crate::RunConfig;
        // One edge interval exactly: after the run's single edge+cloud
        // aggregation, all workers hold the same model.
        let (_, test, shards, model) = small_problem(4);
        let cfg = RunConfig {
            eta: 0.05,
            tau: 3,
            pi: 1,
            total_iters: 3,
            eval_every: 3,
            parallel: false,
            ..RunConfig::default()
        };
        let algo = HierAdMo::adaptive(0.05, 0.5);
        let h = Hierarchy::balanced(2, 2);
        let res = run(&algo, &model, &h, &shards, &test, &cfg).unwrap();
        assert_eq!(res.curve.len(), 1);
    }

    #[test]
    #[should_panic(expected = "gamma must be in [0,1)")]
    fn rejects_gamma_one() {
        let _ = HierAdMo::adaptive(0.01, 1.0);
    }

    #[test]
    #[should_panic(expected = "gamma_edge must be in [0,1)")]
    fn rejects_bad_fixed_gamma() {
        let _ = HierAdMo::reduced(0.01, 0.5, 1.5);
    }
}
