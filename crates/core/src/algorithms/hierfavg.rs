//! HierFAVG (Liu et al., ICC 2020 [17]): client–edge–cloud hierarchical
//! FedAvg — the momentum-free three-tier baseline.

use hieradmo_tensor::Vector;

use crate::state::{EdgeView, FlState, WorkerState};
use crate::strategy::{Strategy, Tier};

use super::sgd_local_step;

/// Hierarchical FedAvg: plain local SGD, weighted model averaging at the
/// edge every `τ` iterations and at the cloud every `τπ`.
///
/// # Example
///
/// ```
/// use hieradmo_core::algorithms::HierFavg;
/// use hieradmo_core::Strategy;
///
/// let algo = HierFavg::new(0.01);
/// assert_eq!(algo.name(), "HierFAVG");
/// ```
#[derive(Debug, Clone)]
pub struct HierFavg {
    eta: f32,
}

impl HierFavg {
    /// Creates HierFAVG with learning rate `eta`.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0`.
    pub fn new(eta: f32) -> Self {
        assert!(eta > 0.0, "eta must be positive, got {eta}");
        HierFavg { eta }
    }
}

impl Strategy for HierFavg {
    fn name(&self) -> &'static str {
        "HierFAVG"
    }

    fn tier(&self) -> Tier {
        Tier::Three
    }

    fn local_step(
        &self,
        _t: usize,
        worker: &mut WorkerState,
        grad: &mut dyn FnMut(&Vector, &mut Vector),
    ) {
        sgd_local_step(self.eta, worker, grad);
    }

    fn edge_aggregate(&self, _k: usize, view: &mut EdgeView<'_>) {
        let avg = view.average(|w| &w.x);
        view.state.x_plus = avg.clone();
        view.for_workers(|w| w.x = avg.clone());
    }

    fn cloud_aggregate(&self, _p: usize, state: &mut FlState) {
        let avg = state.cloud_average(|e| &e.x_plus);
        state.cloud.x_plus = avg.clone();
        for e in &mut state.edges {
            e.x_plus = avg.clone();
        }
        state.for_all_workers(|w| w.x = avg.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{quick_cfg, quick_run};
    use hieradmo_topology::Hierarchy;

    #[test]
    fn learns_the_small_problem() {
        let res = quick_run(&HierFavg::new(0.05), Hierarchy::balanced(2, 2), quick_cfg());
        assert!(res.curve.final_accuracy().unwrap() > 0.6);
    }

    #[test]
    fn no_momentum_state_is_touched() {
        // HierFAVG never writes y/v; they must keep their initial values.
        use crate::algorithms::testutil::small_problem;
        use crate::driver::run;
        let (_, test, shards, model) = small_problem(4);
        let cfg = quick_cfg();
        let h = Hierarchy::balanced(2, 2);
        let res = run(&HierFavg::new(0.05), &model, &h, &shards, &test, &cfg).unwrap();
        // Indirect check: it still converges (y/v untouched is structural,
        // asserted by the strategy not reading them).
        assert!(res.curve.final_accuracy().unwrap() > 0.5);
    }

    #[test]
    #[should_panic(expected = "eta must be positive")]
    fn rejects_zero_eta() {
        let _ = HierFavg::new(0.0);
    }
}
