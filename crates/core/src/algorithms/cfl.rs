//! CFL (Wang et al., INFOCOM 2021 [18]): resource-efficient federated
//! learning with hierarchical aggregation.
//!
//! **Substitution note (DESIGN.md §4).** The original CFL co-designs
//! aggregation with per-round resource budgets. The paper under
//! reproduction uses it purely as a *momentum-free three-tier baseline*
//! whose accuracy lands next to HierFAVG. We reproduce that role: a
//! hierarchical FedAvg in which only a resource-constrained subset of each
//! edge's workers uploads at every edge round (a deterministic rotating
//! subset of the configured participation fraction), with the edge model
//! still re-distributed to all workers.

use hieradmo_tensor::Vector;

use crate::state::{EdgeView, FlState, WorkerState};
use crate::strategy::{Strategy, Tier};

use super::sgd_local_step;

/// Resource-constrained hierarchical FedAvg.
///
/// # Example
///
/// ```
/// use hieradmo_core::algorithms::Cfl;
/// use hieradmo_core::Strategy;
///
/// let algo = Cfl::new(0.01, 0.75); // 75% of each edge's workers per round
/// assert_eq!(algo.name(), "CFL");
/// ```
#[derive(Debug, Clone)]
pub struct Cfl {
    eta: f32,
    participation: f64,
}

impl Cfl {
    /// Creates CFL with learning rate `eta` and per-round participation
    /// fraction (e.g. `0.75` → three quarters of each edge's workers
    /// upload per round, rotating deterministically).
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0` or `participation ∉ (0, 1]`.
    pub fn new(eta: f32, participation: f64) -> Self {
        assert!(eta > 0.0, "eta must be positive, got {eta}");
        assert!(
            participation > 0.0 && participation <= 1.0,
            "participation must be in (0,1], got {participation}"
        );
        Cfl { eta, participation }
    }

    /// The local worker indices (within an edge of `c` workers)
    /// participating in round `k`.
    fn participants(&self, k: usize, c: usize) -> Vec<usize> {
        let m = ((c as f64 * self.participation).ceil() as usize).clamp(1, c);
        // Rotate the window by the round index so every worker participates
        // equally often.
        (0..m).map(|j| (k + j) % c).collect()
    }
}

impl Strategy for Cfl {
    fn name(&self) -> &'static str {
        "CFL"
    }

    fn tier(&self) -> Tier {
        Tier::Three
    }

    fn local_step(
        &self,
        _t: usize,
        worker: &mut WorkerState,
        grad: &mut dyn FnMut(&Vector, &mut Vector),
    ) {
        sgd_local_step(self.eta, worker, grad);
    }

    fn edge_aggregate(&self, k: usize, view: &mut EdgeView<'_>) {
        let participants = self.participants(k, view.num_workers());
        let avg = view.aggregate(
            participants
                .iter()
                .map(|&j| (view.worker_weight(j), &view.workers[j].x)),
        );
        view.state.x_plus = avg.clone();
        view.for_workers(|w| w.x = avg.clone());
    }

    fn cloud_aggregate(&self, _p: usize, state: &mut FlState) {
        let avg = state.cloud_average(|e| &e.x_plus);
        state.cloud.x_plus = avg.clone();
        for e in &mut state.edges {
            e.x_plus = avg.clone();
        }
        state.for_all_workers(|w| w.x = avg.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{quick_cfg, quick_run};
    use hieradmo_topology::Hierarchy;

    #[test]
    fn learns_the_small_problem() {
        let res = quick_run(
            &Cfl::new(0.05, 0.75),
            Hierarchy::balanced(2, 2),
            quick_cfg(),
        );
        assert!(res.curve.final_accuracy().unwrap() > 0.55);
    }

    #[test]
    fn participation_rotates_over_rounds() {
        let cfl = Cfl::new(0.01, 0.5);
        let r1 = cfl.participants(1, 4);
        let r2 = cfl.participants(2, 4);
        assert_eq!(r1.len(), 2);
        assert_ne!(r1, r2, "window must rotate between rounds");
        // Over 4 rounds every worker participates.
        let mut seen = std::collections::HashSet::new();
        for k in 0..4 {
            seen.extend(cfl.participants(k, 4));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn full_participation_equals_hierfavg_selection() {
        let cfl = Cfl::new(0.01, 1.0);
        let mut p = cfl.participants(5, 3);
        p.sort_unstable();
        assert_eq!(p, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "participation must be in (0,1]")]
    fn rejects_zero_participation() {
        let _ = Cfl::new(0.01, 0.0);
    }
}
