//! Virtual worker populations: per-round client sampling over millions of
//! *registered* workers while only the sampled cohort ever materializes.
//!
//! The cross-device regime (Client-Edge-Cloud HFL, arxiv 1905.06641)
//! assumes each edge samples a small cohort of its registered clients per
//! round. This module makes that regime first-class without per-worker
//! allocation:
//!
//! - [`WorkerPopulation`] describes workers *intensionally* — per-edge
//!   counts plus a data-shard assignment rule — in `O(edges + shards)`
//!   memory, whatever the registered population size.
//! - [`CohortSampler`] draws each edge's per-round cohort without
//!   replacement from a seed that depends only on `(seed, edge, round)`.
//! - [`StatePool`] recycles [`WorkerState`] buffers; a materialized slot
//!   is *fully* overwritten from its edge's current state, so results are
//!   independent of pool-recycling order.
//! - Every per-worker RNG stream (mini-batch order, adversary draws,
//!   network delays) re-derives from `(seed, worker_id, round)` via
//!   [`worker_round_seed`], so trajectories are independent of population
//!   size, thread count, and scheduling.
//! - [`run_virtual`] threads a sampled cohort through the tick-driven
//!   engine; the event-driven counterpart lives in
//!   `hieradmo_simrt::simulate_virtual`. Under [`ClientSampling::Full`]
//!   (or a fraction ≥ 1) both *delegate* to the classic full-participation
//!   drivers, reproducing existing trajectories bitwise (gated by
//!   `tests/sampling_equivalence.rs`).
//!
//! Aggregation weights follow the partition-of-unity split of
//! [`Weights::from_cohort`]: within an edge, data shares renormalize over
//! the sampled cohort; across edges, shares keep the full registered
//! population's proportions.

use std::time::Instant;

use hieradmo_data::{Batcher, Dataset};
use hieradmo_metrics::{AdversaryCounters, ConvergenceCurve, EvalPoint};
use hieradmo_models::Model;
use hieradmo_netsim::adversary::AdversarySampler;
use hieradmo_netsim::stream_seed;
use hieradmo_tensor::Vector;
use hieradmo_topology::{Hierarchy, TierAggregation, TierTree, Weights};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::byzantine::corrupt_upload;
use crate::checkpoint::TrainingSnapshot;
use crate::config::RunConfig;
use crate::driver::{build_train_probe, evaluate_on_replicas, run, RunError, RunResult};
use crate::state::{FlState, WorkerState};
use crate::strategy::{Strategy, TierScope};

/// Largest population the full-participation delegation path will
/// materialize (per-worker state and shard clones). Beyond this, ask for
/// sampling — that is the point of a virtual population.
pub const MATERIALIZE_CAP: u64 = 1 << 16;

/// Stream salts decorrelating the per-`(worker, round)` derivations from
/// each other and from every legacy stream.
const SALT_BATCH: u64 = 0x6261_7463_6865_7221;
const SALT_ADVERSARY: u64 = 0x6164_7665_7273_6172;
const SALT_NET: u64 = 0x6e65_745f_7374_7265;
const SALT_COHORT: u64 = 0x636f_686f_7274_2121;
const SALT_DROPOUT: u64 = 0x6472_6f70_6f75_7421;
const SALT_FAULT: u64 = 0x6661_756c_745f_7374;

/// Seed for a worker's per-round RNG stream: a function of `(master,
/// worker_id, round)` *only* — never of population size, cohort
/// composition, thread count, or pool-recycling order. Composes the
/// pinned [`stream_seed`] mixer twice.
pub fn worker_round_seed(master: u64, worker_id: u64, round: u64) -> u64 {
    stream_seed(stream_seed(master, worker_id), round)
}

/// Mini-batch stream seed of worker `worker_id` in round `round` (feeds
/// [`hieradmo_data::Batcher`]).
pub fn batcher_seed(master: u64, worker_id: u64, round: u64) -> u64 {
    worker_round_seed(master ^ SALT_BATCH, worker_id, round)
}

/// Adversary stream id of worker `worker_id` in round `round` (feeds
/// [`AdversarySampler::from_stream`] together with the training seed).
pub fn adversary_stream(worker_id: u64, round: u64) -> u64 {
    worker_round_seed(SALT_ADVERSARY, worker_id, round)
}

/// Network-delay stream id of worker `worker_id` in round `round` (feeds
/// `DelaySampler::from_stream` together with the network seed in the
/// event-driven engine).
pub fn delay_stream(worker_id: u64, round: u64) -> u64 {
    worker_round_seed(SALT_NET, worker_id, round)
}

/// Fault stream id of worker `worker_id` in round `round` (feeds
/// `FaultSampler::from_stream` together with the network seed in the
/// event-driven engine): sampled cohorts re-derive crash and spike draws
/// per `(worker, round)`, so fault trajectories are independent of cohort
/// composition, thread count, and scheduling.
pub fn fault_stream(worker_id: u64, round: u64) -> u64 {
    worker_round_seed(SALT_FAULT, worker_id, round)
}

/// Per-step dropout mask of worker `worker_id` in round `round`: `tau`
/// draws from a dedicated `(master, worker, round)` stream, `true` where
/// the step is dropped (skipped entirely: no mini-batch draw, no local
/// step, no compute time). Both virtual engines share this helper, so
/// sampled dropout runs stay bitwise identical across engines and thread
/// counts. A zero (or negative) `dropout` returns an all-false mask
/// without drawing.
pub fn cohort_dropout_mask(
    master: u64,
    worker_id: u64,
    round: u64,
    tau: usize,
    dropout: f64,
) -> Vec<bool> {
    if dropout <= 0.0 {
        return vec![false; tau];
    }
    let mut rng = StdRng::seed_from_u64(worker_round_seed(master ^ SALT_DROPOUT, worker_id, round));
    (0..tau)
        .map(|_| rng.gen_range(0.0..1.0) < dropout)
        .collect()
}

/// Per-round client sampling policy.
///
/// The default ([`ClientSampling::Full`]) is today's full participation:
/// every registered worker runs every round, and the virtual drivers
/// delegate to the classic engines bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ClientSampling {
    /// Every registered worker participates every round.
    #[default]
    Full,
    /// Each edge samples `ceil(fraction · population)` of its registered
    /// workers per round (at least 1). `fraction` must be finite and in
    /// `(0, 1]`; a fraction of exactly 1 *is* full participation and
    /// delegates like [`ClientSampling::Full`].
    Fraction {
        /// Per-edge participating fraction in `(0, 1]`.
        fraction: f64,
    },
    /// Each edge samples exactly `count` of its registered workers per
    /// round. Must be ≥ 1 and at most the smallest per-edge population.
    PerEdge {
        /// Per-edge cohort size.
        count: usize,
    },
}

impl ClientSampling {
    /// Checks internal consistency: rejects a zero sample size and
    /// non-finite or out-of-`(0, 1]` fractions. (The per-edge population
    /// cross-check lives in [`WorkerPopulation::cohort_sizes`], which
    /// knows the counts.)
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on the conditions above.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ClientSampling::Full => Ok(()),
            ClientSampling::Fraction { fraction } => {
                if !fraction.is_finite() || fraction <= 0.0 || fraction > 1.0 {
                    return Err(format!(
                        "sampling fraction must be finite and in (0, 1], got {fraction}"
                    ));
                }
                Ok(())
            }
            ClientSampling::PerEdge { count } => {
                if count == 0 {
                    return Err("per-edge sample size must be at least 1".into());
                }
                Ok(())
            }
        }
    }

    /// `true` when this policy is full participation (and the virtual
    /// drivers delegate to the classic engines).
    pub fn is_full(&self) -> bool {
        match *self {
            ClientSampling::Full => true,
            ClientSampling::Fraction { fraction } => fraction >= 1.0,
            ClientSampling::PerEdge { .. } => false,
        }
    }
}

/// How registered workers map to data shards.
///
/// A million-worker run does not hold a million datasets; it holds a few
/// distinct shards and a *rule* assigning each registered worker one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ShardAssignment {
    /// Global worker `g` holds shard `g mod num_shards`.
    RoundRobin {
        /// Number of distinct data shards.
        num_shards: usize,
    },
}

impl ShardAssignment {
    /// Number of distinct shards this rule addresses.
    pub fn num_shards(&self) -> usize {
        match *self {
            ShardAssignment::RoundRobin { num_shards } => num_shards,
        }
    }

    /// The shard index of global worker `g`.
    pub fn shard_of(&self, g: u64) -> usize {
        match *self {
            ShardAssignment::RoundRobin { num_shards } => (g % num_shards as u64) as usize,
        }
    }
}

/// An intensional description of the registered worker population: how
/// many workers each edge serves and which data shard each holds.
/// `O(edges)` memory regardless of the registered count — no per-worker
/// allocation happens until a worker is *sampled*.
///
/// Global worker ids are edge-major, exactly like [`Hierarchy`]'s flat
/// indexing: edge `e`'s workers are the contiguous id range
/// `[offsets[e], offsets[e+1])`. A tier-path or flat-index adversary/fault
/// plan built against the equivalent materialized hierarchy therefore
/// addresses the *same* workers by the same ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerPopulation {
    per_edge: Vec<u64>,
    /// Prefix sums of `per_edge`; `offsets[e]` is edge `e`'s first global
    /// id, `offsets.last()` the total population.
    offsets: Vec<u64>,
    shards: ShardAssignment,
}

impl WorkerPopulation {
    /// Builds a population from per-edge registered counts and a shard
    /// assignment rule.
    ///
    /// # Errors
    ///
    /// Rejects an empty edge list, a zero-worker edge, a zero-shard rule,
    /// or a total that overflows `u64`.
    pub fn new(per_edge: Vec<u64>, shards: ShardAssignment) -> Result<Self, String> {
        if per_edge.is_empty() {
            return Err("population needs at least one edge".into());
        }
        if let Some(e) = per_edge.iter().position(|&n| n == 0) {
            return Err(format!("edge {e} has zero registered workers"));
        }
        if shards.num_shards() == 0 {
            return Err("shard assignment needs at least one shard".into());
        }
        let mut offsets = Vec::with_capacity(per_edge.len() + 1);
        let mut total: u64 = 0;
        offsets.push(0);
        for &n in &per_edge {
            total = total
                .checked_add(n)
                .ok_or_else(|| "population size overflows u64".to_string())?;
            offsets.push(total);
        }
        Ok(WorkerPopulation {
            per_edge,
            offsets,
            shards,
        })
    }

    /// A balanced population: `edges` edges of `per_edge` workers each,
    /// shards assigned round-robin over `num_shards` shards.
    ///
    /// # Errors
    ///
    /// The [`WorkerPopulation::new`] conditions.
    pub fn uniform(edges: usize, per_edge: u64, num_shards: usize) -> Result<Self, String> {
        Self::new(
            vec![per_edge; edges],
            ShardAssignment::RoundRobin { num_shards },
        )
    }

    /// The population whose edges are a [`Hierarchy`]'s edges — same
    /// worker counts, same edge-major flat ids — so flat-index adversary
    /// and fault plans address identical workers in both worlds.
    ///
    /// # Errors
    ///
    /// The [`WorkerPopulation::new`] conditions.
    pub fn from_hierarchy(hierarchy: &Hierarchy, num_shards: usize) -> Result<Self, String> {
        Self::new(
            (0..hierarchy.num_edges())
                .map(|e| hierarchy.edge_workers(e).len() as u64)
                .collect(),
            ShardAssignment::RoundRobin { num_shards },
        )
    }

    /// The population spanned by a depth-3 [`TierTree`]'s leaf tier (the
    /// tree shape tier-path plans — `AdversaryPlan::uniform_at_paths`,
    /// `PermanentCrash::at_path` — are written against).
    ///
    /// # Errors
    ///
    /// The [`WorkerPopulation::new`] conditions.
    pub fn from_tier_tree(tree: &TierTree, num_shards: usize) -> Result<Self, String> {
        Self::from_hierarchy(&tree.edge_hierarchy(), num_shards)
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.per_edge.len()
    }

    /// Total registered workers across all edges.
    pub fn total_workers(&self) -> u64 {
        *self.offsets.last().expect("offsets is never empty")
    }

    /// Registered workers under edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn workers_in_edge(&self, e: usize) -> u64 {
        self.per_edge[e]
    }

    /// Global id of edge `e`'s `local`-th worker.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range or `local` exceeds the edge's count.
    pub fn global_id(&self, e: usize, local: u64) -> u64 {
        assert!(local < self.per_edge[e], "local id out of range");
        self.offsets[e] + local
    }

    /// The edge serving global worker `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn edge_of(&self, g: u64) -> usize {
        assert!(g < self.total_workers(), "global id out of range");
        self.offsets.partition_point(|&o| o <= g) - 1
    }

    /// The data shard held by global worker `g`.
    pub fn shard_of(&self, g: u64) -> usize {
        self.shards.shard_of(g)
    }

    /// The shard assignment rule.
    pub fn shard_assignment(&self) -> ShardAssignment {
        self.shards
    }

    /// Per-edge cohort sizes under `sampling`.
    ///
    /// # Errors
    ///
    /// Rejects a [`ClientSampling`] that fails its own validation, and a
    /// per-edge sample size exceeding that edge's registered population.
    pub fn cohort_sizes(&self, sampling: &ClientSampling) -> Result<Vec<usize>, String> {
        sampling.validate()?;
        self.per_edge
            .iter()
            .enumerate()
            .map(|(e, &n)| {
                let k = match *sampling {
                    ClientSampling::Full => n,
                    ClientSampling::Fraction { fraction } => {
                        ((fraction * n as f64).ceil() as u64).clamp(1, n)
                    }
                    ClientSampling::PerEdge { count } => {
                        if count as u64 > n {
                            return Err(format!(
                                "sample size {count} exceeds edge {e}'s registered \
                                 population of {n}"
                            ));
                        }
                        count as u64
                    }
                };
                usize::try_from(k).map_err(|_| format!("cohort size {k} does not fit usize"))
            })
            .collect()
    }

    /// Total data samples registered under each edge, in closed form from
    /// the shard sizes: round-robin assignment sums complete shard cycles
    /// plus a remainder per residue class, `O(edges · shards)` total.
    ///
    /// # Panics
    ///
    /// Panics if `shard_sizes` disagrees with the assignment rule.
    pub fn edge_data_samples(&self, shard_sizes: &[u64]) -> Vec<u64> {
        assert_eq!(
            shard_sizes.len(),
            self.shards.num_shards(),
            "need one size per shard"
        );
        let m = shard_sizes.len() as u64;
        // Workers `g` in `[0, x)` with `g ≡ s (mod m)`.
        let count_upto = |x: u64, s: u64| if x > s { (x - s - 1) / m + 1 } else { 0 };
        (0..self.per_edge.len())
            .map(|e| {
                let (a, b) = (self.offsets[e], self.offsets[e + 1]);
                shard_sizes
                    .iter()
                    .enumerate()
                    .map(|(s, &len)| (count_upto(b, s as u64) - count_upto(a, s as u64)) * len)
                    .sum()
            })
            .collect()
    }

    /// The materialized [`Hierarchy`] equivalent to this population — the
    /// full-participation delegation path.
    ///
    /// # Errors
    ///
    /// Rejects populations past [`MATERIALIZE_CAP`]: materializing them is
    /// exactly what a virtual population avoids; sample instead.
    pub fn materialize_hierarchy(&self) -> Result<Hierarchy, String> {
        if self.total_workers() > MATERIALIZE_CAP {
            return Err(format!(
                "refusing to materialize {} workers (cap {MATERIALIZE_CAP}); \
                 use client sampling for populations this large",
                self.total_workers()
            ));
        }
        Ok(Hierarchy::new(
            self.per_edge.iter().map(|&n| n as usize).collect(),
        ))
    }

    /// One dataset per registered worker (each a clone of its assigned
    /// shard), for the full-participation delegation path. Call only after
    /// [`WorkerPopulation::materialize_hierarchy`] has accepted the size.
    pub fn materialize_shards(&self, shards: &[Dataset]) -> Vec<Dataset> {
        (0..self.total_workers())
            .map(|g| shards[self.shard_of(g)].clone())
            .collect()
    }

    /// Checks `shards` against the assignment rule: one non-empty dataset
    /// per shard.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on count mismatch or empty shards.
    pub fn validate_shards(&self, shards: &[Dataset]) -> Result<(), String> {
        if shards.len() != self.shards.num_shards() {
            return Err(format!(
                "{} shard datasets for a {}-shard assignment",
                shards.len(),
                self.shards.num_shards()
            ));
        }
        if let Some(s) = shards.iter().position(Dataset::is_empty) {
            return Err(format!("shard {s} has no data"));
        }
        Ok(())
    }
}

/// Seeded deterministic per-round cohort sampling: edge `e`'s round-`k`
/// cohort is a uniform without-replacement draw whose RNG seed depends
/// only on `(seed, e's tier path, k)` — never on other edges, earlier
/// rounds, thread count, or population bookkeeping.
///
/// The per-edge stream base folds [`stream_seed`] over the edge's
/// root-to-edge path in the *collapsed* tree
/// ([`TierTree::collapse`] · [`TierTree::edge_path`]), so extending a
/// tree by a pass-through tier cannot move any cohort: the collapsed
/// path — and with it every sampled trajectory — is unchanged (pinned by
/// `tests/sampling_equivalence.rs`). On a depth-3 tree the collapsed
/// path is the single component `[e]`, which makes [`CohortSampler::new`]
/// (the flat, tree-less constructor) and `for_tree` on any depth-3 or
/// pass-through-extended tree draw identical cohorts.
#[derive(Debug, Clone)]
pub struct CohortSampler {
    seed: u64,
    /// Per-edge stream bases (path-folded); `None` means flat edge
    /// indexing, which is defined as the depth-3 path `[edge]`.
    bases: Option<Vec<u64>>,
}

impl CohortSampler {
    /// A sampler over the master training seed, addressing edges by flat
    /// index (the depth-3 shape).
    pub fn new(seed: u64) -> Self {
        CohortSampler { seed, bases: None }
    }

    /// A sampler whose streams derive from each edge's full tier path in
    /// `tree` (after collapsing pass-through tiers), so cohorts are
    /// stable under pass-through extension and distinct across sibling
    /// subtrees at every depth.
    pub fn for_tree(seed: u64, tree: &TierTree) -> Self {
        let collapsed = tree.collapse();
        let bases = (0..collapsed.num_edges())
            .map(|e| {
                collapsed
                    .edge_path(e)
                    .iter()
                    .fold(seed ^ SALT_COHORT, |acc, &c| stream_seed(acc, c as u64))
            })
            .collect();
        CohortSampler {
            seed,
            bases: Some(bases),
        }
    }

    /// Draws edge `edge`'s round-`round` cohort: `k` distinct local ids in
    /// `[0, population)`, ascending. Floyd's algorithm — `O(k log k)` time
    /// and `O(k)` memory however large the population.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0, exceeds `population`, or `edge` is outside a
    /// tree-derived sampler's edge tier.
    pub fn cohort(&self, edge: usize, round: usize, population: u64, k: usize) -> Vec<u64> {
        assert!(k > 0, "cohort must be non-empty");
        assert!(k as u64 <= population, "cohort exceeds population");
        if k as u64 == population {
            return (0..population).collect();
        }
        let base = match &self.bases {
            Some(bases) => bases[edge],
            None => stream_seed(self.seed ^ SALT_COHORT, edge as u64),
        };
        let mut rng = StdRng::seed_from_u64(stream_seed(base, round as u64));
        let mut chosen = std::collections::BTreeSet::new();
        for j in (population - k as u64)..population {
            let t = rng.gen_range(0..=j);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }
}

/// A recycling pool of [`WorkerState`] buffers for engines whose active
/// set changes across rounds. Materialization *fully overwrites* every
/// field of a slot, so which recycled buffer a worker lands in — and what
/// it previously held — cannot affect results (pinned by unit test).
#[derive(Debug, Default)]
pub struct StatePool {
    free: Vec<WorkerState>,
}

impl StatePool {
    /// An empty pool.
    pub fn new() -> Self {
        StatePool::default()
    }

    /// Number of idle recycled buffers.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Materializes a sampled worker into `slot`: the fresh-download state
    /// of a worker joining its edge — model `x` from the edge's `x_plus`,
    /// lookahead `y` from the edge's `y_minus`, zero velocity and
    /// accumulators. Every field is overwritten; nothing of the slot's
    /// previous occupant survives.
    pub fn materialize(slot: &mut WorkerState, x: &Vector, y: &Vector) {
        slot.x.copy_from(x);
        slot.y.copy_from(y);
        slot.v.fill(0.0);
        slot.grad_accum.fill(0.0);
        slot.y_accum.fill(0.0);
        slot.v_accum.fill(0.0);
        slot.steps = 0;
        slot.scratch.fill(0.0);
    }

    /// Acquires a materialized state (recycling an idle buffer of the
    /// right dimension if one exists, else allocating).
    pub fn acquire(&mut self, x: &Vector, y: &Vector) -> WorkerState {
        let mut slot = match self.free.pop() {
            Some(s) if s.x.len() == x.len() => s,
            _ => WorkerState::new(x),
        };
        Self::materialize(&mut slot, x, y);
        slot
    }

    /// Returns a state's buffers to the pool for recycling.
    pub fn release(&mut self, slot: WorkerState) {
        self.free.push(slot);
    }
}

/// Data-weighted average of per-edge vectors under the cross-edge
/// population shares — the virtual engines' global model (equal to the
/// post-redistribution worker average, since every cohort worker holds its
/// edge's model after aggregation). One implementation shared by both
/// engines so evaluations stay bitwise comparable.
pub fn weighted_edge_average<'a, I>(weights: &Weights, xs: I) -> Vector
where
    I: IntoIterator<Item = &'a Vector>,
{
    Vector::weighted_average(
        xs.into_iter()
            .enumerate()
            .map(|(e, x)| (weights.edge_in_total(e), x)),
    )
}

/// The virtual engines' global model: the population-weighted average of
/// the edges' current models.
pub fn virtual_global_params(fl: &FlState) -> Vector {
    weighted_edge_average(&fl.weights, fl.edges.iter().map(|e| &e.x_plus))
}

/// Materializes edge `edge`'s round-`round` cohort in place: samples the
/// cohort, swaps the edge's in-cohort data weights, and downloads the
/// edge's current state into each cohort slot (model from `x_plus`,
/// lookahead from `y_minus`, zero velocity/accumulators — exactly the
/// state a full-participation worker holds right after any aggregation).
/// Returns the sampled global ids, ascending.
///
/// Touches only edge-local state, so both engines call it at their own
/// per-edge round boundaries and stay bitwise identical.
pub fn materialize_edge_cohort(
    fl: &mut FlState,
    population: &WorkerPopulation,
    shard_sizes: &[u64],
    sampler: &CohortSampler,
    edge: usize,
    round: usize,
) -> Vec<u64> {
    let slots = fl.hierarchy.edge_workers(edge);
    let ids: Vec<u64> = sampler
        .cohort(edge, round, population.workers_in_edge(edge), slots.len())
        .into_iter()
        .map(|local| population.global_id(edge, local))
        .collect();
    let counts: Vec<u64> = ids
        .iter()
        .map(|&g| shard_sizes[population.shard_of(g)])
        .collect();
    fl.weights.set_edge_cohort(edge, &counts);
    let edge_state = &fl.edges[edge];
    for slot in slots {
        StatePool::materialize(
            &mut fl.workers[slot],
            &edge_state.x_plus,
            &edge_state.y_minus,
        );
    }
    ids
}

/// Runs `strategy` over a virtual population with per-round client
/// sampling — the tick-driven engine's cross-device mode.
///
/// Under full participation ([`ClientSampling::is_full`]) this
/// materializes the population and delegates to [`run`], reproducing the
/// classic trajectory bitwise. Otherwise each round `k` (of
/// `T / τ`): every edge samples a cohort ([`CohortSampler`]), the cohort
/// materializes from its edge's state, runs `τ` local steps on per-round
/// RNG streams, Byzantine members poison their uploads, and the edge
/// aggregates the cohort with in-cohort renormalized weights; the cloud
/// fires every `π` rounds over population-weighted edge shares.
///
/// Evaluation happens at round boundaries where `k·τ` is a multiple of
/// `eval_every` (and always at the final round), on the
/// population-weighted edge average ([`virtual_global_params`]).
///
/// Results are bitwise identical across thread counts, and bitwise equal
/// to the event-driven `hieradmo_simrt::simulate_virtual` under full sync
/// (both gated by `tests/sampling_equivalence.rs`).
///
/// Restrictions of the sampled path (documented, validated): legacy
/// `edges`/`workers_per_edge` config fields are not supported (the
/// population defines the topology), and `adversary` plans must address
/// workers by *global* (population) ids. Dropout composes with sampling:
/// each cohort worker draws a per-step mask from its own
/// `(seed, worker, round)` stream ([`cohort_dropout_mask`]) and skips
/// dropped steps entirely.
///
/// # Errors
///
/// Everything [`run`] rejects, plus the population/sampling/shard
/// consistency checks above.
pub fn run_virtual<M, S>(
    strategy: &S,
    model: &M,
    population: &WorkerPopulation,
    shards: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
) -> Result<RunResult, RunError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    run_virtual_span(
        strategy, model, population, shards, test_data, cfg, None, None, None,
    )
    .map(|(result, _)| result)
}

/// Runs `strategy` over a virtual population laid out on an
/// arbitrary-depth [`TierTree`]: the N-tier generalization of
/// [`run_virtual`]. Each of the tree's edges samples its per-round cohort
/// by tier path ([`CohortSampler::for_tree`]); middle tiers fire
/// bottom-up at their interval boundaries through
/// [`Strategy::tier_aggregate`], between the edge and root aggregations,
/// exactly like the full-participation [`crate::driver::run_tiered`].
///
/// The tree's leaf fanout must equal every edge's *registered* count (the
/// tree describes the registered population; the engine runs its sampled
/// sub-tree, whose leaf fanout is the cohort size). Under full
/// participation this delegates to [`crate::driver::run_tiered`]
/// bitwise, at every depth.
///
/// # Errors
///
/// Everything [`run_virtual`] rejects, plus a tree whose shape or
/// `(τ, π)` disagree with the population/config, and non-uniform cohort
/// sizes (middle tiers need a balanced sampled sub-tree).
pub fn run_virtual_tiered<M, S>(
    strategy: &S,
    model: &M,
    population: &WorkerPopulation,
    shards: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    tree: &TierTree,
) -> Result<RunResult, RunError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    run_virtual_span(
        strategy,
        model,
        population,
        shards,
        test_data,
        cfg,
        Some(tree),
        None,
        None,
    )
    .map(|(result, _)| result)
}

/// Like [`run_virtual_tiered`], but stops after tick `stop_at` (a
/// positive multiple of `τ` no larger than `T`) and returns the
/// federation state at that edge boundary alongside the partial result —
/// the sampled-cohort counterpart of [`crate::driver::run_tiered_until`].
/// Cohort workers re-materialize from their edge at every round start, so
/// the snapshot needs no RNG replay on resume: every per-worker stream
/// re-derives from `(seed, worker, round)`.
///
/// # Errors
///
/// Everything [`run_virtual_tiered`] rejects, plus a `stop_at` off the
/// edge-boundary grid.
#[allow(clippy::too_many_arguments)]
pub fn run_virtual_tiered_until<M, S>(
    strategy: &S,
    model: &M,
    population: &WorkerPopulation,
    shards: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    tree: &TierTree,
    stop_at: usize,
) -> Result<(RunResult, TrainingSnapshot), RunError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    let (result, snapshot) = run_virtual_span(
        strategy,
        model,
        population,
        shards,
        test_data,
        cfg,
        Some(tree),
        None,
        Some(stop_at),
    )?;
    Ok((
        result,
        snapshot.expect("run_virtual_span produces a snapshot whenever stop_at is given"),
    ))
}

/// Continues a sampled tiered run from a snapshot captured by
/// [`run_virtual_tiered_until`] with the same strategy, model,
/// population, shards and config, bitwise identically to the
/// uninterrupted [`run_virtual_tiered`] — at *any* thread count (gated by
/// `tests/checkpoint_restore.rs`). The returned curve and traces cover
/// only the resumed span.
///
/// # Errors
///
/// Everything [`run_virtual_tiered`] rejects, plus a snapshot whose
/// algorithm, tick or shapes do not match this run.
#[allow(clippy::too_many_arguments)]
pub fn run_virtual_tiered_resumed<M, S>(
    strategy: &S,
    model: &M,
    population: &WorkerPopulation,
    shards: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    tree: &TierTree,
    snapshot: &TrainingSnapshot,
) -> Result<RunResult, RunError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    run_virtual_span(
        strategy,
        model,
        population,
        shards,
        test_data,
        cfg,
        Some(tree),
        Some(snapshot),
        None,
    )
    .map(|(result, _)| result)
}

/// The shared engine behind [`run_virtual`] and its tiered variants:
/// optionally lays the population over a [`TierTree`] (`tiers`),
/// optionally starts from a mid-run snapshot (`resume`), optionally stops
/// at an edge boundary (`stop_at`, which also makes it return the state
/// there).
#[allow(clippy::too_many_arguments)]
fn run_virtual_span<M, S>(
    strategy: &S,
    model: &M,
    population: &WorkerPopulation,
    shards: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    tiers: Option<&TierTree>,
    resume: Option<&TrainingSnapshot>,
    stop_at: Option<usize>,
) -> Result<(RunResult, Option<TrainingSnapshot>), RunError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    cfg.validate().map_err(RunError::BadConfig)?;
    if !cfg.churn.is_empty() {
        return Err(RunError::BadConfig(
            "virtual-population runs keep a registered (frozen) tree; a \
             non-empty ChurnPlan only composes with the materialized \
             engines (crate::elastic::run_elastic)"
                .into(),
        ));
    }
    population.validate_shards(shards).map_err(RunError::Data)?;
    if let Some(b) = cfg
        .adversary
        .byzantine
        .iter()
        .find(|b| b.worker as u64 >= population.total_workers())
    {
        return Err(RunError::BadConfig(format!(
            "adversary plan marks worker {} Byzantine, but the population \
             registers only {} workers",
            b.worker,
            population.total_workers()
        )));
    }
    if let Some(tree) = tiers {
        if tree.num_edges() != population.num_edges() {
            return Err(RunError::BadConfig(format!(
                "tier tree spans {} edges, the population registers {}",
                tree.num_edges(),
                population.num_edges()
            )));
        }
        let leaf = tree.levels().last().expect("trees have levels").fanout as u64;
        if let Some(e) =
            (0..population.num_edges()).find(|&e| population.workers_in_edge(e) != leaf)
        {
            return Err(RunError::BadConfig(format!(
                "tier tree registers {leaf} workers per edge, edge {e} \
                 registers {}",
                population.workers_in_edge(e)
            )));
        }
        if cfg.tau != tree.tau() || cfg.pi != tree.pi_total() {
            return Err(RunError::BadConfig(format!(
                "config (tau = {}, pi = {}) disagrees with the tier tree \
                 (tau = {}, pi_total = {})",
                cfg.tau,
                cfg.pi,
                tree.tau(),
                tree.pi_total()
            )));
        }
    }
    if cfg.sampling.is_full() {
        let hierarchy = population.materialize_hierarchy().map_err(RunError::Data)?;
        let worker_data = population.materialize_shards(shards);
        return match tiers {
            None => run(strategy, model, &hierarchy, &worker_data, test_data, cfg)
                .map(|result| (result, None)),
            Some(tree) => match (resume, stop_at) {
                (None, None) => {
                    crate::driver::run_tiered(strategy, model, tree, &worker_data, test_data, cfg)
                        .map(|result| (result, None))
                }
                (None, Some(stop)) => crate::driver::run_tiered_until(
                    strategy,
                    model,
                    tree,
                    &worker_data,
                    test_data,
                    cfg,
                    stop,
                )
                .map(|(result, snap)| (result, Some(snap))),
                (Some(snap), None) => crate::driver::run_tiered_resumed(
                    strategy,
                    model,
                    tree,
                    &worker_data,
                    test_data,
                    cfg,
                    snap,
                )
                .map(|result| (result, None)),
                (Some(_), Some(_)) => Err(RunError::BadConfig(
                    "resuming and stopping in one span is not supported".into(),
                )),
            },
        };
    }
    if cfg.edges.is_some() || cfg.workers_per_edge.is_some() {
        return Err(RunError::BadConfig(
            "legacy edges/workers_per_edge fields are not supported with a \
             virtual population (the population defines the topology)"
                .into(),
        ));
    }
    if let Some(stop) = stop_at {
        if stop == 0 || stop > cfg.total_iters || stop % cfg.tau != 0 {
            return Err(RunError::BadConfig(format!(
                "stop_at must be a positive multiple of tau ({}) no larger than \
                 total_iters ({}), got {stop}",
                cfg.tau, cfg.total_iters
            )));
        }
    }

    let cohort = population
        .cohort_sizes(&cfg.sampling)
        .map_err(RunError::BadConfig)?;
    if tiers.is_some() && cohort.windows(2).any(|w| w[0] != w[1]) {
        return Err(RunError::BadConfig(
            "sampled tier trees need one uniform cohort size (the sampled \
             sub-tree must stay balanced); use ClientSampling::PerEdge"
                .into(),
        ));
    }
    let hierarchy = Hierarchy::new(cohort.clone());
    strategy
        .check_topology(&hierarchy)
        .map_err(RunError::Topology)?;
    // The engine runs the *sampled* sub-tree: the registered tree with its
    // leaf fanout swapped for the (uniform) cohort size. All non-leaf
    // levels — and with them every middle boundary — are unchanged.
    let cohort_tree = tiers.map(|tree| {
        let mut levels = tree.levels().to_vec();
        levels.last_mut().expect("trees have levels").fanout = cohort[0];
        TierTree::new(levels).expect("cohort sub-tree of a validated tree is valid")
    });

    let started = Instant::now();
    let shard_sizes: Vec<u64> = shards.iter().map(|d| d.len() as u64).collect();
    let edge_totals = population.edge_data_samples(&shard_sizes);
    let total_slots = hierarchy.num_workers();
    let weights = Weights::from_cohort(&hierarchy, &vec![1u64; total_slots], edge_totals);
    let x0 = model.params();
    let mut fl = FlState::new(hierarchy.clone(), weights, &x0);
    fl.aggregator = cfg.aggregator;
    if let Some(tree) = &cohort_tree {
        fl.attach_tree(tree.clone());
    }
    strategy.init(&mut fl);

    let start = match resume {
        None => 0,
        Some(snap) => {
            if snap.algorithm != strategy.name() {
                return Err(RunError::BadConfig(format!(
                    "snapshot was captured by {}, cannot resume under {}",
                    snap.algorithm,
                    strategy.name()
                )));
            }
            if snap.tick == 0 || snap.tick >= cfg.total_iters || snap.tick % cfg.tau != 0 {
                return Err(RunError::BadConfig(format!(
                    "snapshot tick {} is not an edge boundary (multiple of tau = {}) \
                     strictly before total_iters = {}",
                    snap.tick, cfg.tau, cfg.total_iters
                )));
            }
            if snap.workers.len() != total_slots || snap.edges.len() != hierarchy.num_edges() {
                return Err(RunError::Data(format!(
                    "snapshot holds {} workers / {} edges for a sampled sub-tree \
                     with {} / {}",
                    snap.workers.len(),
                    snap.edges.len(),
                    total_slots,
                    hierarchy.num_edges()
                )));
            }
            if snap.cloud.x_plus.len() != x0.len() {
                return Err(RunError::Data(format!(
                    "snapshot dimension {} does not match model dimension {}",
                    snap.cloud.x_plus.len(),
                    x0.len()
                )));
            }
            if snap.middle.len() != fl.middle.len()
                || snap
                    .middle
                    .iter()
                    .zip(&fl.middle)
                    .any(|(s, m)| s.len() != m.len())
            {
                return Err(RunError::Data(format!(
                    "snapshot holds {} middle tiers for a tree with {}",
                    snap.middle.len(),
                    fl.middle.len()
                )));
            }
            // All trajectory state lives in the edge/cloud/middle tiers:
            // cohort workers re-materialize from their edge at every round
            // start, so restoring those tiers restores everything.
            fl.workers = snap.workers.clone();
            fl.edges = snap.edges.clone();
            fl.cloud = snap.cloud.clone();
            fl.middle = snap.middle.clone();
            snap.tick / cfg.tau
        }
    };
    if let (Some(stop), Some(snap)) = (stop_at, resume) {
        if stop <= snap.tick {
            return Err(RunError::BadConfig(format!(
                "stop_at ({stop}) must be past the snapshot tick ({})",
                snap.tick
            )));
        }
    }

    let sampler = match tiers {
        Some(tree) => CohortSampler::for_tree(cfg.seed, tree),
        None => CohortSampler::new(cfg.seed),
    };
    let train_probe = build_train_probe(shards, cfg.train_eval_cap);
    let threads = cfg.resolved_threads();
    let mut eval_models: Vec<M> = (0..threads).map(|_| model.clone()).collect();
    let mut step_models: Vec<M> = (0..threads).map(|_| model.clone()).collect();

    let mut curve = ConvergenceCurve::new();
    let mut gamma_trace = Vec::new();
    let mut cos_trace = Vec::new();
    let mut tier_gamma: Vec<Vec<(usize, f32)>> = vec![Vec::new(); fl.middle.len()];
    let mut timings = crate::driver::PhaseTimings::default();
    let mut adversary_counters = vec![AdversaryCounters::default(); cfg.adversary.byzantine.len()];

    // Per-slot round-scoped context, rebuilt from `(seed, worker, round)`
    // every round.
    let mut slot_gids: Vec<u64> = vec![0; total_slots];
    let mut slot_shards: Vec<usize> = vec![0; total_slots];
    let mut batchers: Vec<Batcher> = Vec::with_capacity(total_slots);

    let rounds = cfg.total_iters / cfg.tau;
    for k in (start + 1)..=rounds {
        // 1. Sample and materialize every edge's cohort.
        let t0 = Instant::now();
        batchers.clear();
        for e in 0..fl.hierarchy.num_edges() {
            let ids = materialize_edge_cohort(&mut fl, population, &shard_sizes, &sampler, e, k);
            let offset = fl.hierarchy.edge_workers(e).start;
            for (j, &g) in ids.iter().enumerate() {
                slot_gids[offset + j] = g;
                slot_shards[offset + j] = population.shard_of(g);
            }
        }
        for slot in 0..total_slots {
            batchers.push(Batcher::new(
                shard_sizes[slot_shards[slot]] as usize,
                cfg.batch_size,
                batcher_seed(cfg.seed, slot_gids[slot], k as u64),
            ));
        }

        // 2. τ local steps per cohort worker. Slots are independent — no
        //    cross-worker interaction inside an interval — so contiguous
        //    slot chunks run on scoped threads with identical results for
        //    every thread count.
        let t_base = (k - 1) * cfg.tau;
        let per = total_slots.div_ceil(threads);
        let clip = cfg.clip_norm;
        let tau = cfg.tau;
        let dropout = cfg.dropout;
        let seed = cfg.seed;
        std::thread::scope(|scope| {
            let worker_chunks = fl.workers.chunks_mut(per);
            let batcher_chunks = batchers.chunks_mut(per);
            let shard_chunks = slot_shards.chunks(per);
            let gid_chunks = slot_gids.chunks(per);
            let handles: Vec<_> = worker_chunks
                .zip(batcher_chunks)
                .zip(shard_chunks)
                .zip(gid_chunks)
                .zip(step_models.iter_mut())
                .map(|((((ws, bs), ss), gs), model)| {
                    scope.spawn(move || {
                        let mut batch: Vec<usize> = Vec::new();
                        for (((w, b), &s), &g) in ws
                            .iter_mut()
                            .zip(bs.iter_mut())
                            .zip(ss.iter())
                            .zip(gs.iter())
                        {
                            let data = &shards[s];
                            // A dropped step is skipped entirely — no
                            // mini-batch draw, no local step — from the
                            // worker's own (seed, worker, round) stream.
                            let dropped = cohort_dropout_mask(seed, g, k as u64, tau, dropout);
                            for step in 1..=tau {
                                if dropped[step - 1] {
                                    continue;
                                }
                                b.next_batch_into(&mut batch);
                                let mut grad_fn = |p: &Vector, out: &mut Vector| {
                                    model.set_params(p);
                                    model.loss_and_grad_into(data, &batch, out);
                                    if let Some(max_norm) = clip {
                                        let norm = out.norm();
                                        if norm > max_norm {
                                            out.scale_in_place(max_norm / norm);
                                        }
                                    }
                                };
                                strategy.local_step(t_base + step, w, &mut grad_fn);
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("step thread panicked");
            }
        });
        timings.local_steps += t0.elapsed();

        // 3. Byzantine cohort members poison their uploads, in flat slot
        //    order, each from its own (seed, worker, round) stream.
        let t0 = Instant::now();
        for (slot, &g) in slot_gids.iter().enumerate() {
            if let Some(attack) = cfg.adversary.attack_for(g as usize) {
                let entry = cfg
                    .adversary
                    .byzantine
                    .iter()
                    .position(|b| b.worker as u64 == g)
                    .expect("attack_for hit implies a plan entry");
                let mut adv_sampler =
                    AdversarySampler::from_stream(cfg.seed, adversary_stream(g, k as u64));
                corrupt_upload(
                    &mut fl.workers[slot],
                    &attack,
                    &mut adv_sampler,
                    &mut adversary_counters[entry],
                );
            }
        }

        // 4. Edge aggregation over the cohort (serial, edge order — the
        //    hooks are cheap relative to τ local steps).
        for e in 0..fl.hierarchy.num_edges() {
            strategy.edge_aggregate(k, &mut fl.edge_view(e));
        }
        let n_edges = fl.edges.len() as f32;
        gamma_trace.push((
            k,
            fl.edges.iter().map(|e| e.gamma_edge).sum::<f32>() / n_edges,
        ));
        cos_trace.push((
            k,
            fl.edges.iter().map(|e| e.cos_theta).sum::<f32>() / n_edges,
        ));
        timings.edge_agg += t0.elapsed();

        // 5. Middle tiers fire bottom-up whenever the edge round count
        //    divides their synchronization period — serially and without
        //    RNG, mirroring the full-participation tick engine, so
        //    pass-through tiers cannot perturb any stream.
        if let Some(tree) = &cohort_tree {
            let t0 = Instant::now();
            for d in tree.middle_depths().rev() {
                if tree.levels()[d].aggregation == TierAggregation::Identity {
                    continue;
                }
                let period = tree.sync_rounds(d);
                if k % period == 0 {
                    let round = k / period;
                    for node in 0..tree.nodes_at(d) {
                        strategy.tier_aggregate(
                            TierScope::Middle {
                                depth: d,
                                node,
                                state: &mut fl,
                            },
                            round,
                        );
                    }
                    let tier = &fl.middle[d - 1];
                    let mean = tier.iter().map(|s| s.gamma_edge).sum::<f32>() / tier.len() as f32;
                    tier_gamma[d - 1].push((round, mean));
                }
            }
            timings.cloud_agg += t0.elapsed();
        }

        // 6. Cloud aggregation every π rounds.
        if k % cfg.pi == 0 {
            let t0 = Instant::now();
            if cohort_tree.is_some() {
                strategy.tier_aggregate(TierScope::Root(&mut fl), k / cfg.pi);
            } else {
                strategy.cloud_aggregate(k / cfg.pi, &mut fl);
            }
            timings.cloud_agg += t0.elapsed();
        }

        // 7. Evaluation at matching round boundaries and at the end.
        if (k * cfg.tau).is_multiple_of(cfg.eval_every) || k == rounds {
            let t0 = Instant::now();
            let params = virtual_global_params(&fl);
            let (test_eval, train_eval) =
                evaluate_on_replicas(&mut eval_models, test_data, &train_probe, &params);
            curve.push(EvalPoint {
                iteration: k * cfg.tau,
                train_loss: train_eval.loss,
                test_loss: test_eval.loss,
                test_accuracy: test_eval.accuracy,
            });
            timings.eval += t0.elapsed();
        }

        if stop_at == Some(k * cfg.tau) {
            break;
        }
    }

    let final_params = virtual_global_params(&fl);
    let snapshot = stop_at.map(|stop| TrainingSnapshot {
        algorithm: strategy.name().to_string(),
        tick: stop,
        workers: fl.workers.clone(),
        edges: fl.edges.clone(),
        cloud: fl.cloud.clone(),
        middle: fl.middle.clone(),
        topology: None,
    });
    Ok((
        RunResult {
            algorithm: strategy.name().to_string(),
            curve,
            gamma_trace,
            cos_trace,
            tier_gamma,
            final_params,
            elapsed: started.elapsed(),
            timings,
            adversaries: adversary_counters,
            topology: hieradmo_metrics::TopologyCounters::default(),
        },
        snapshot,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_validation_rejects_bad_policies() {
        assert!(ClientSampling::Full.validate().is_ok());
        assert!(ClientSampling::Fraction { fraction: 0.5 }
            .validate()
            .is_ok());
        assert!(ClientSampling::Fraction { fraction: 1.0 }
            .validate()
            .is_ok());
        assert!(ClientSampling::Fraction { fraction: 0.0 }
            .validate()
            .is_err());
        assert!(ClientSampling::Fraction { fraction: -0.1 }
            .validate()
            .is_err());
        assert!(ClientSampling::Fraction { fraction: 1.5 }
            .validate()
            .is_err());
        assert!(ClientSampling::Fraction { fraction: f64::NAN }
            .validate()
            .is_err());
        assert!(ClientSampling::Fraction {
            fraction: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(ClientSampling::PerEdge { count: 0 }.validate().is_err());
        assert!(ClientSampling::PerEdge { count: 3 }.validate().is_ok());
    }

    #[test]
    fn full_and_fraction_one_are_full_participation() {
        assert!(ClientSampling::Full.is_full());
        assert!(ClientSampling::Fraction { fraction: 1.0 }.is_full());
        assert!(!ClientSampling::Fraction { fraction: 0.99 }.is_full());
        assert!(!ClientSampling::PerEdge { count: 1 }.is_full());
    }

    #[test]
    fn population_indexing_round_trips() {
        let p = WorkerPopulation::new(vec![3, 5, 2], ShardAssignment::RoundRobin { num_shards: 4 })
            .unwrap();
        assert_eq!(p.num_edges(), 3);
        assert_eq!(p.total_workers(), 10);
        assert_eq!(p.workers_in_edge(1), 5);
        for e in 0..3 {
            for local in 0..p.workers_in_edge(e) {
                let g = p.global_id(e, local);
                assert_eq!(p.edge_of(g), e);
            }
        }
        assert_eq!(p.shard_of(0), 0);
        assert_eq!(p.shard_of(7), 3);
        assert_eq!(p.shard_of(9), 1);
    }

    #[test]
    fn population_rejects_degenerate_shapes() {
        assert!(
            WorkerPopulation::new(vec![], ShardAssignment::RoundRobin { num_shards: 1 }).is_err()
        );
        assert!(
            WorkerPopulation::new(vec![3, 0], ShardAssignment::RoundRobin { num_shards: 1 })
                .is_err()
        );
        assert!(
            WorkerPopulation::new(vec![3], ShardAssignment::RoundRobin { num_shards: 0 }).is_err()
        );
        assert!(WorkerPopulation::new(
            vec![u64::MAX, 2],
            ShardAssignment::RoundRobin { num_shards: 1 }
        )
        .is_err());
    }

    #[test]
    fn cohort_sizes_cover_every_policy() {
        let p = WorkerPopulation::uniform(2, 10, 2).unwrap();
        assert_eq!(p.cohort_sizes(&ClientSampling::Full).unwrap(), vec![10, 10]);
        assert_eq!(
            p.cohort_sizes(&ClientSampling::Fraction { fraction: 0.25 })
                .unwrap(),
            vec![3, 3]
        );
        assert_eq!(
            p.cohort_sizes(&ClientSampling::Fraction { fraction: 1e-9 })
                .unwrap(),
            vec![1, 1],
            "tiny fractions sample at least one worker"
        );
        assert_eq!(
            p.cohort_sizes(&ClientSampling::PerEdge { count: 4 })
                .unwrap(),
            vec![4, 4]
        );
        let err = p
            .cohort_sizes(&ClientSampling::PerEdge { count: 11 })
            .unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        assert!(p
            .cohort_sizes(&ClientSampling::PerEdge { count: 0 })
            .is_err());
        assert!(p
            .cohort_sizes(&ClientSampling::Fraction { fraction: f64::NAN })
            .is_err());
    }

    #[test]
    fn edge_data_samples_match_brute_force() {
        let shard_sizes = [7u64, 3, 11, 5];
        let p = WorkerPopulation::new(
            vec![5, 13, 1, 6],
            ShardAssignment::RoundRobin { num_shards: 4 },
        )
        .unwrap();
        let closed = p.edge_data_samples(&shard_sizes);
        let brute: Vec<u64> = (0..4)
            .map(|e| {
                (0..p.workers_in_edge(e))
                    .map(|l| shard_sizes[p.shard_of(p.global_id(e, l))])
                    .sum()
            })
            .collect();
        assert_eq!(closed, brute);
    }

    #[test]
    fn cohorts_are_sorted_unique_deterministic_and_in_range() {
        let s = CohortSampler::new(42);
        for round in 1..5 {
            let c = s.cohort(3, round, 1_000_000, 64);
            assert_eq!(c.len(), 64);
            assert!(c.windows(2).all(|w| w[0] < w[1]), "sorted and unique");
            assert!(c.iter().all(|&g| g < 1_000_000));
            assert_eq!(c, s.cohort(3, round, 1_000_000, 64), "deterministic");
        }
        // Distinct rounds and edges draw different cohorts.
        assert_ne!(s.cohort(3, 1, 1_000_000, 64), s.cohort(3, 2, 1_000_000, 64));
        assert_ne!(s.cohort(3, 1, 1_000_000, 64), s.cohort(4, 1, 1_000_000, 64));
        // Distinct seeds too.
        assert_ne!(
            s.cohort(3, 1, 1_000_000, 64),
            CohortSampler::new(43).cohort(3, 1, 1_000_000, 64)
        );
        // k == population is the identity cohort.
        assert_eq!(s.cohort(0, 1, 5, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn worker_round_seed_depends_only_on_its_arguments() {
        // The whole determinism story rests on this: a worker's streams
        // re-derive from (master, id, round) alone, so population size,
        // cohort composition and pool recycling cannot move them.
        assert_eq!(worker_round_seed(7, 123, 4), worker_round_seed(7, 123, 4));
        assert_ne!(worker_round_seed(7, 123, 4), worker_round_seed(7, 123, 5));
        assert_ne!(worker_round_seed(7, 123, 4), worker_round_seed(7, 124, 4));
        assert_ne!(worker_round_seed(8, 123, 4), worker_round_seed(7, 123, 4));
        // The salted derivations decorrelate from each other.
        let (g, k) = (55, 9);
        assert_ne!(batcher_seed(7, g, k), adversary_stream(g, k));
        assert_ne!(adversary_stream(g, k), delay_stream(g, k));
    }

    #[test]
    fn state_pool_materialization_is_recycling_order_independent() {
        let x = Vector::from(vec![1.0, 2.0, 3.0]);
        let y = Vector::from(vec![4.0, 5.0, 6.0]);
        let mut pool = StatePool::new();
        let fresh = pool.acquire(&x, &y);

        // Dirty a state thoroughly, recycle it, re-acquire: bitwise equal
        // to the fresh allocation.
        let mut dirty = pool.acquire(&x, &y);
        dirty.x.fill(9.0);
        dirty.y.fill(-1.0);
        dirty.v.fill(7.0);
        dirty.grad_accum.fill(3.0);
        dirty.y_accum.fill(2.0);
        dirty.v_accum.fill(1.0);
        dirty.steps = 17;
        dirty.scratch.fill(5.0);
        pool.release(dirty);
        assert_eq!(pool.idle(), 1);
        let recycled = pool.acquire(&x, &y);
        assert_eq!(recycled, fresh);
        assert_eq!(pool.idle(), 0);

        // A wrong-dimension buffer is not recycled into the slot.
        pool.release(WorkerState::new(&Vector::zeros(5)));
        let refit = pool.acquire(&x, &y);
        assert_eq!(refit, fresh);
    }

    #[test]
    fn materialized_cohort_holds_the_edge_download() {
        let p = WorkerPopulation::uniform(2, 100, 3).unwrap();
        let hierarchy = Hierarchy::balanced(2, 2);
        let shard_sizes = [10u64, 20, 30];
        let weights =
            Weights::from_cohort(&hierarchy, &[1, 1, 1, 1], p.edge_data_samples(&shard_sizes));
        let mut fl = FlState::new(hierarchy, weights, &Vector::from(vec![0.0, 0.0]));
        fl.edges[1].x_plus = Vector::from(vec![3.0, 4.0]);
        fl.edges[1].y_minus = Vector::from(vec![5.0, 6.0]);
        fl.workers[2].v = Vector::from(vec![9.0, 9.0]);

        let sampler = CohortSampler::new(1);
        let ids = materialize_edge_cohort(&mut fl, &p, &shard_sizes, &sampler, 1, 7);
        assert_eq!(ids.len(), 2);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert!(ids.iter().all(|&g| (100..200).contains(&g)), "edge 1's ids");
        for slot in 2..4 {
            assert_eq!(fl.workers[slot].x.as_slice(), &[3.0, 4.0]);
            assert_eq!(fl.workers[slot].y.as_slice(), &[5.0, 6.0]);
            assert_eq!(fl.workers[slot].v.as_slice(), &[0.0, 0.0]);
            assert_eq!(fl.workers[slot].steps, 0);
        }
        // Edge 0's slots are untouched.
        assert_eq!(fl.workers[0].x.as_slice(), &[0.0, 0.0]);
        // In-edge weights renormalize over the sampled cohort's shards.
        let w0 = fl.weights.worker_in_edge(2);
        let w1 = fl.weights.worker_in_edge(3);
        assert!((w0 + w1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn materialize_cap_guards_the_delegation_path() {
        let big = WorkerPopulation::uniform(4, 1_000_000, 2).unwrap();
        let err = big.materialize_hierarchy().unwrap_err();
        assert!(err.contains("sampling"), "{err}");
        let small = WorkerPopulation::uniform(2, 3, 2).unwrap();
        let h = small.materialize_hierarchy().unwrap();
        assert_eq!(h.num_workers(), 6);
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn population_serde_round_trips() {
        let p = WorkerPopulation::new(vec![10, 20], ShardAssignment::RoundRobin { num_shards: 3 })
            .unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: WorkerPopulation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        let s = ClientSampling::Fraction { fraction: 0.125 };
        let back: ClientSampling =
            serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
