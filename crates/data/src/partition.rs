//! Partitioners that distribute a training set across federated workers.
//!
//! The paper controls non-i.i.d.-ness with an *x-class* scheme
//! (Section V-B): each worker is assigned only `x` of the dataset's classes,
//! with smaller `x` meaning stronger heterogeneity (Fig. 2(e)–(g) use
//! x = 3, 6, 9 on MNIST). [`x_class_partition`] implements exactly that;
//! [`iid_partition`] and [`dirichlet_partition`] are the standard
//! comparison points.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

/// Splits `dataset` into `n_workers` i.i.d. shards of (near-)equal size.
///
/// Samples are shuffled and dealt round-robin, so shard sizes differ by at
/// most one.
///
/// # Panics
///
/// Panics if `n_workers == 0` or `dataset.len() < n_workers`.
pub fn iid_partition(dataset: &Dataset, n_workers: usize, seed: u64) -> Vec<Dataset> {
    assert!(n_workers > 0, "need at least one worker");
    assert!(
        dataset.len() >= n_workers,
        "dataset of {} samples cannot cover {} workers",
        dataset.len(),
        n_workers
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    shuffle(&mut indices, &mut rng);
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); n_workers];
    for (i, idx) in indices.into_iter().enumerate() {
        shards[i % n_workers].push(idx);
    }
    shards.iter().map(|s| dataset.subset(s)).collect()
}

/// The paper's *x-class non-i.i.d.* partition: each worker receives samples
/// from exactly `x` (randomly chosen) classes.
///
/// Class assignment balances coverage: classes are dealt to workers in a
/// shuffled round-robin so that every class is held by at least one worker
/// whenever `n_workers * x >= num_classes`. The samples of each class are
/// split evenly among the workers holding that class.
///
/// # Panics
///
/// Panics if `x == 0`, `x > num_classes`, `n_workers == 0`, or the dataset
/// has no classification samples.
pub fn x_class_partition(dataset: &Dataset, n_workers: usize, x: usize, seed: u64) -> Vec<Dataset> {
    let num_classes = dataset.num_classes();
    assert!(n_workers > 0, "need at least one worker");
    assert!(x > 0, "x must be positive");
    assert!(
        x <= num_classes,
        "x = {x} exceeds the number of classes {num_classes}"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // Deal class slots: n_workers * x slots, filled by cycling through a
    // shuffled class list so coverage is as even as possible.
    let mut class_order: Vec<usize> = (0..num_classes).collect();
    shuffle(&mut class_order, &mut rng);
    let mut worker_classes: Vec<Vec<usize>> = vec![Vec::new(); n_workers];
    let mut cursor = 0usize;
    for wc in worker_classes.iter_mut() {
        while wc.len() < x {
            let class = class_order[cursor % num_classes];
            cursor += 1;
            if !wc.contains(&class) {
                wc.push(class);
            } else {
                // Worker already holds every class seen so far this cycle;
                // pick any class it lacks (guaranteed to exist since
                // x <= num_classes).
                let missing = (0..num_classes)
                    .find(|c| !wc.contains(c))
                    .expect("x <= num_classes guarantees a missing class");
                wc.push(missing);
            }
        }
    }

    // Split each class's samples among the workers that hold it.
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); n_workers];
    for class in 0..num_classes {
        let holders: Vec<usize> = (0..n_workers)
            .filter(|&w| worker_classes[w].contains(&class))
            .collect();
        if holders.is_empty() {
            continue;
        }
        let mut idxs = dataset.indices_of_class(class);
        shuffle(&mut idxs, &mut rng);
        for (i, idx) in idxs.into_iter().enumerate() {
            shards[holders[i % holders.len()]].push(idx);
        }
    }
    assert!(
        shards.iter().any(|s| !s.is_empty()),
        "x_class_partition produced no data; dataset has no class samples"
    );
    shards.iter().map(|s| dataset.subset(s)).collect()
}

/// Dirichlet(α) label-skew partition, the other standard non-i.i.d.
/// generator in the FL literature. Small `alpha` → heavy skew; large
/// `alpha` → approaches i.i.d.
///
/// # Panics
///
/// Panics if `alpha <= 0`, `n_workers == 0`, or the dataset has no
/// classification samples.
pub fn dirichlet_partition(
    dataset: &Dataset,
    n_workers: usize,
    alpha: f64,
    seed: u64,
) -> Vec<Dataset> {
    assert!(n_workers > 0, "need at least one worker");
    assert!(alpha > 0.0, "alpha must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); n_workers];
    let mut any = false;
    for class in 0..dataset.num_classes() {
        let mut idxs = dataset.indices_of_class(class);
        if idxs.is_empty() {
            continue;
        }
        any = true;
        shuffle(&mut idxs, &mut rng);
        let props = dirichlet_sample(&mut rng, alpha, n_workers);
        // Convert proportions to cumulative boundaries over the class size.
        let n = idxs.len();
        let mut start = 0usize;
        let mut acc = 0.0f64;
        for (w, &p) in props.iter().enumerate() {
            acc += p;
            let end = if w + 1 == n_workers {
                n
            } else {
                ((acc * n as f64).round() as usize).min(n)
            };
            shards[w].extend_from_slice(&idxs[start..end]);
            start = end;
        }
    }
    assert!(any, "dirichlet_partition requires classification samples");
    shards.iter().map(|s| dataset.subset(s)).collect()
}

/// Samples from a symmetric Dirichlet(α) via normalized Gamma draws
/// (Marsaglia–Tsang for α ≥ 1, boost trick below 1).
fn dirichlet_sample(rng: &mut StdRng, alpha: f64, k: usize) -> Vec<f64> {
    let draws: Vec<f64> = (0..k).map(|_| gamma_sample(rng, alpha)).collect();
    let total: f64 = draws.iter().sum();
    if total <= 0.0 {
        vec![1.0 / k as f64; k]
    } else {
        draws.into_iter().map(|d| d / total).collect()
    }
}

fn gamma_sample(rng: &mut StdRng, alpha: f64) -> f64 {
    if alpha < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma_sample(rng, alpha + 1.0) * u.powf(1.0 / alpha);
    }
    // Marsaglia–Tsang squeeze method.
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x: f64 = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(0.0..1.0f64);
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    // Box–Muller.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0f64);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticDataset;

    fn mnist(n: usize) -> Dataset {
        SyntheticDataset::mnist_like(n, 1, 77).train
    }

    #[test]
    fn iid_covers_all_samples_evenly() {
        let ds = mnist(10); // 100 samples
        let shards = iid_partition(&ds, 4, 1);
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(Dataset::len).sum();
        assert_eq!(total, ds.len());
        let sizes: Vec<usize> = shards.iter().map(Dataset::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn x_class_limits_classes_per_worker() {
        let ds = mnist(10);
        for x in [1, 3, 6, 9, 10] {
            let shards = x_class_partition(&ds, 4, x, 5);
            for shard in &shards {
                let held = shard.class_histogram().iter().filter(|&&c| c > 0).count();
                assert!(held <= x, "worker holds {held} classes with x={x}");
                assert!(!shard.is_empty(), "worker shard empty with x={x}");
            }
            let total: usize = shards.iter().map(Dataset::len).sum();
            if 4 * x >= ds.num_classes() {
                // Enough slots to hold every class: nothing may be dropped.
                assert_eq!(total, ds.len(), "samples lost with x={x}");
            } else {
                // Unheld classes are necessarily dropped; held ones are not.
                let mut covered = vec![false; ds.num_classes()];
                for shard in &shards {
                    for (c, &n) in shard.class_histogram().iter().enumerate() {
                        if n > 0 {
                            covered[c] = true;
                        }
                    }
                }
                let expected: usize = ds
                    .class_histogram()
                    .iter()
                    .enumerate()
                    .filter(|&(c, _)| covered[c])
                    .map(|(_, &n)| n)
                    .sum();
                assert_eq!(total, expected, "held-class samples lost with x={x}");
            }
        }
    }

    #[test]
    fn x_class_covers_every_class_when_possible() {
        let ds = mnist(10);
        // 4 workers × 3 classes = 12 slots ≥ 10 classes.
        let shards = x_class_partition(&ds, 4, 3, 5);
        let mut covered = vec![false; 10];
        for shard in &shards {
            for (c, &n) in shard.class_histogram().iter().enumerate() {
                if n > 0 {
                    covered[c] = true;
                }
            }
        }
        assert!(
            covered.iter().all(|&b| b),
            "not all classes covered: {covered:?}"
        );
    }

    #[test]
    fn x_class_is_deterministic_per_seed() {
        let ds = mnist(5);
        let a = x_class_partition(&ds, 4, 2, 9);
        let b = x_class_partition(&ds, 4, 2, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the number of classes")]
    fn x_too_large_panics() {
        let ds = mnist(2);
        let _ = x_class_partition(&ds, 2, 11, 0);
    }

    #[test]
    fn dirichlet_partitions_all_samples() {
        let ds = mnist(10);
        for alpha in [0.1, 1.0, 100.0] {
            let shards = dirichlet_partition(&ds, 5, alpha, 3);
            let total: usize = shards.iter().map(Dataset::len).sum();
            assert_eq!(total, ds.len(), "alpha={alpha}");
        }
    }

    #[test]
    fn dirichlet_small_alpha_is_more_skewed() {
        let ds = mnist(50);
        let skew = |alpha: f64| -> f64 {
            let shards = dirichlet_partition(&ds, 5, alpha, 17);
            // Mean (over workers) of the max class share within the worker.
            shards
                .iter()
                .filter(|s| !s.is_empty())
                .map(|s| {
                    let h = s.class_histogram();
                    *h.iter().max().unwrap() as f64 / s.len() as f64
                })
                .sum::<f64>()
                / shards.len() as f64
        };
        assert!(
            skew(0.05) > skew(100.0),
            "alpha=0.05 should be more skewed than alpha=100"
        );
    }

    #[test]
    fn gamma_sampler_has_sane_mean() {
        let mut rng = StdRng::seed_from_u64(123);
        for alpha in [0.5, 1.0, 3.0] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| gamma_sample(&mut rng, alpha)).sum::<f64>() / n as f64;
            assert!(
                (mean - alpha).abs() < 0.15 * alpha.max(1.0),
                "Gamma({alpha}) sample mean {mean}"
            );
        }
    }
}
