//! Synthetic dataset generators standing in for the paper's real datasets.
//!
//! Offline substitution (DESIGN.md §4): each generator produces a problem
//! with the *same tensor shapes and class counts* as the real dataset, built
//! from class prototypes plus per-sample noise:
//!
//! - image datasets use smooth (low-spatial-frequency) prototypes and random
//!   translations, so convolutional models genuinely outperform linear ones
//!   (preserving the paper's model ordering);
//! - UCI-HAR is emulated by a Gaussian mixture in 561-d with *correlated
//!   class pairs* (walking vs walking-upstairs style confusions);
//! - difficulty is controlled by the noise-to-prototype-scale ratio, which
//!   is tuned so MNIST-like ≫ easier than CIFAR-like ≫ easier than
//!   ImageNet-like, matching the relative accuracies of Table II.

use std::f32::consts::TAU;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

use hieradmo_tensor::Vector;

use crate::dataset::{Dataset, FeatureShape, Sample, Target, TrainTest};

/// Parameters of a prototype-plus-noise synthetic classification dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Number of classes.
    pub num_classes: usize,
    /// Feature shape (flat or image).
    pub shape: FeatureShape,
    /// Standard deviation of per-sample additive Gaussian noise.
    pub noise: f32,
    /// Scale of the class prototypes (signal strength).
    pub prototype_scale: f32,
    /// For image shapes: maximum random translation (pixels, torus roll)
    /// applied per sample. Zero disables jitter.
    pub max_shift: usize,
    /// Group size for correlated prototypes (1 = independent classes).
    /// Classes within a group share a base pattern, making them mutually
    /// confusable — used by the HAR-like generator.
    pub class_group: usize,
}

impl SyntheticSpec {
    /// MNIST-like: 10 classes, 1×28×28, strong signal (easy problem).
    pub fn mnist_like() -> Self {
        SyntheticSpec {
            num_classes: 10,
            shape: FeatureShape::Image {
                channels: 1,
                height: 28,
                width: 28,
            },
            noise: 0.45,
            prototype_scale: 1.0,
            max_shift: 2,
            class_group: 1,
        }
    }

    /// CIFAR-10-like: 10 classes, 3×32×32, noisier (harder problem).
    pub fn cifar10_like() -> Self {
        SyntheticSpec {
            num_classes: 10,
            shape: FeatureShape::Image {
                channels: 3,
                height: 32,
                width: 32,
            },
            noise: 1.0,
            prototype_scale: 0.8,
            max_shift: 3,
            class_group: 1,
        }
    }

    /// Tiny-ImageNet-like: 20 classes, 3×16×16, hardest image problem
    /// (most classes, lowest signal-to-noise of the image sets).
    pub fn imagenet_like() -> Self {
        SyntheticSpec {
            num_classes: 20,
            shape: FeatureShape::Image {
                channels: 3,
                height: 16,
                width: 16,
            },
            noise: 0.8,
            prototype_scale: 0.9,
            max_shift: 2,
            class_group: 1,
        }
    }

    /// UCI-HAR-like: 6 classes, 561 flat features, correlated class pairs.
    pub fn har_like() -> Self {
        SyntheticSpec {
            num_classes: 6,
            shape: FeatureShape::Flat(561),
            noise: 0.9,
            prototype_scale: 0.6,
            max_shift: 0,
            class_group: 2,
        }
    }
}

/// A generated synthetic dataset with its train/test splits.
///
/// # Example
///
/// ```
/// use hieradmo_data::synthetic::SyntheticDataset;
///
/// let tt = SyntheticDataset::mnist_like(100, 20, 7);
/// assert_eq!(tt.train.len(), 1000);  // 100 per class × 10 classes
/// assert_eq!(tt.test.len(), 200);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticDataset;

impl SyntheticDataset {
    /// Generates an MNIST-like train/test pair with `train_per_class` /
    /// `test_per_class` samples per class.
    pub fn mnist_like(train_per_class: usize, test_per_class: usize, seed: u64) -> TrainTest {
        generate(
            &SyntheticSpec::mnist_like(),
            train_per_class,
            test_per_class,
            seed,
        )
    }

    /// Generates a CIFAR-10-like train/test pair.
    pub fn cifar10_like(train_per_class: usize, test_per_class: usize, seed: u64) -> TrainTest {
        generate(
            &SyntheticSpec::cifar10_like(),
            train_per_class,
            test_per_class,
            seed,
        )
    }

    /// Generates a Tiny-ImageNet-like train/test pair (20 classes).
    pub fn imagenet_like(train_per_class: usize, test_per_class: usize, seed: u64) -> TrainTest {
        generate(
            &SyntheticSpec::imagenet_like(),
            train_per_class,
            test_per_class,
            seed,
        )
    }

    /// Generates a UCI-HAR-like train/test pair (6 activity classes).
    pub fn har_like(train_per_class: usize, test_per_class: usize, seed: u64) -> TrainTest {
        generate(
            &SyntheticSpec::har_like(),
            train_per_class,
            test_per_class,
            seed,
        )
    }
}

/// Generates a dataset from an arbitrary [`SyntheticSpec`].
///
/// Prototypes and both splits are fully determined by `seed`.
///
/// # Panics
///
/// Panics if the spec has zero classes or a zero-length shape.
pub fn generate(
    spec: &SyntheticSpec,
    train_per_class: usize,
    test_per_class: usize,
    seed: u64,
) -> TrainTest {
    assert!(spec.num_classes > 0, "spec needs at least one class");
    assert!(!spec.shape.is_empty(), "spec needs a non-empty shape");
    let mut rng = StdRng::seed_from_u64(seed);
    let prototypes = make_prototypes(spec, &mut rng);

    let make_split = |per_class: usize, rng: &mut StdRng| {
        let mut samples = Vec::with_capacity(per_class * spec.num_classes);
        for (class, prototype) in prototypes.iter().enumerate() {
            for _ in 0..per_class {
                samples.push(Sample {
                    features: sample_features(spec, prototype, rng),
                    target: Target::Class(class),
                });
            }
        }
        // Shuffle so downstream batching over a prefix is not class-ordered.
        shuffle(&mut samples, rng);
        Dataset::new(samples, spec.shape, spec.num_classes)
    };

    let train = make_split(train_per_class, &mut rng);
    let test = make_split(test_per_class, &mut rng);
    TrainTest { train, test }
}

/// Generates a linear-regression dataset `y = W·x + ε` with a hidden true
/// `W`; used by unit/property tests and the convex-model experiments.
///
/// Returns `(train, test)` datasets with [`Target::Regression`] targets of
/// dimension `out_dim`.
pub fn linear_regression(
    in_dim: usize,
    out_dim: usize,
    n_train: usize,
    n_test: usize,
    noise: f32,
    seed: u64,
) -> TrainTest {
    let mut rng = StdRng::seed_from_u64(seed);
    let normal = Normal::new(0.0f32, 1.0).expect("valid normal");
    let w: Vec<Vec<f32>> = (0..out_dim)
        .map(|_| {
            (0..in_dim)
                .map(|_| normal.sample(&mut rng) / (in_dim as f32).sqrt())
                .collect()
        })
        .collect();
    let noise_dist = Normal::new(0.0f32, noise).expect("valid normal");

    let make = |n: usize, rng: &mut StdRng| {
        let samples = (0..n)
            .map(|_| {
                let x: Vector = (0..in_dim).map(|_| normal.sample(rng)).collect();
                let y: Vector = w
                    .iter()
                    .map(|row| {
                        row.iter().zip(x.iter()).map(|(a, b)| a * b).sum::<f32>()
                            + noise_dist.sample(rng)
                    })
                    .collect();
                Sample {
                    features: x,
                    target: Target::Regression(y),
                }
            })
            .collect();
        Dataset::new(samples, FeatureShape::Flat(in_dim), 0)
    };
    let train = make(n_train, &mut rng);
    let test = make(n_test, &mut rng);
    TrainTest { train, test }
}

fn make_prototypes(spec: &SyntheticSpec, rng: &mut StdRng) -> Vec<Vector> {
    let group = spec.class_group.max(1);
    let mut bases: Vec<Vector> = Vec::new();
    let mut prototypes = Vec::with_capacity(spec.num_classes);
    for class in 0..spec.num_classes {
        if class % group == 0 {
            bases.push(make_prototype(spec, rng, spec.prototype_scale));
        }
        let base = bases.last().expect("base exists").clone();
        let proto = if group == 1 {
            base
        } else {
            // Within-group variation at 40% of the prototype scale keeps
            // grouped classes mutually confusable but separable.
            let delta = make_prototype(spec, rng, spec.prototype_scale * 0.4);
            &base + &delta
        };
        prototypes.push(proto);
    }
    prototypes
}

/// A single prototype: smooth low-frequency pattern for images, Gaussian
/// vector for flat shapes.
fn make_prototype(spec: &SyntheticSpec, rng: &mut StdRng, scale: f32) -> Vector {
    match spec.shape {
        FeatureShape::Flat(d) => {
            let normal = Normal::new(0.0f32, scale).expect("valid normal");
            (0..d).map(|_| normal.sample(rng)).collect()
        }
        FeatureShape::Image {
            channels,
            height,
            width,
        } => {
            let mut data = vec![0.0f32; channels * height * width];
            for c in 0..channels {
                // Sum of a few random 2-D cosine waves gives spatially
                // smooth class textures that convolutions can exploit.
                let waves: Vec<(f32, f32, f32, f32)> = (0..4)
                    .map(|_| {
                        (
                            rng.gen_range(0.5..3.0f32), // fy
                            rng.gen_range(0.5..3.0f32), // fx
                            rng.gen_range(0.0..TAU),    // phase
                            rng.gen_range(0.5..1.0f32), // amplitude
                        )
                    })
                    .collect();
                for y in 0..height {
                    for x in 0..width {
                        let mut v = 0.0;
                        for &(fy, fx, phase, amp) in &waves {
                            v += amp
                                * (TAU
                                    * (fy * y as f32 / height as f32
                                        + fx * x as f32 / width as f32)
                                    + phase)
                                    .cos();
                        }
                        data[(c * height + y) * width + x] = v * scale / 2.0;
                    }
                }
            }
            Vector::from(data)
        }
    }
}

fn sample_features(spec: &SyntheticSpec, prototype: &Vector, rng: &mut StdRng) -> Vector {
    let noise = Normal::new(0.0f32, spec.noise).expect("valid normal");
    let mut feats: Vec<f32> = prototype.iter().map(|&p| p + noise.sample(rng)).collect();
    if spec.max_shift > 0 {
        if let FeatureShape::Image {
            channels,
            height,
            width,
        } = spec.shape
        {
            let s = spec.max_shift as i64;
            let dy = rng.gen_range(-s..=s);
            let dx = rng.gen_range(-s..=s);
            feats = roll_image(&feats, channels, height, width, dy, dx);
        }
    }
    Vector::from(feats)
}

/// Torus-rolls a CHW image by `(dy, dx)` pixels.
fn roll_image(data: &[f32], c: usize, h: usize, w: usize, dy: i64, dx: i64) -> Vec<f32> {
    let mut out = vec![0.0f32; data.len()];
    for ch in 0..c {
        for y in 0..h {
            let sy = (y as i64 - dy).rem_euclid(h as i64) as usize;
            for x in 0..w {
                let sx = (x as i64 - dx).rem_euclid(w as i64) as usize;
                out[(ch * h + y) * w + x] = data[(ch * h + sy) * w + sx];
            }
        }
    }
    out
}

fn shuffle(samples: &mut [Sample], rng: &mut StdRng) {
    for i in (1..samples.len()).rev() {
        let j = rng.gen_range(0..=i);
        samples.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_like_has_expected_shape() {
        let tt = SyntheticDataset::mnist_like(5, 2, 1);
        assert_eq!(tt.train.len(), 50);
        assert_eq!(tt.test.len(), 20);
        assert_eq!(tt.train.num_classes(), 10);
        assert_eq!(tt.train.shape().len(), 784);
        assert_eq!(tt.train.class_histogram(), vec![5; 10]);
    }

    #[test]
    fn cifar_and_imagenet_shapes() {
        let c = SyntheticDataset::cifar10_like(1, 1, 2);
        assert_eq!(c.train.shape().len(), 3 * 32 * 32);
        let i = SyntheticDataset::imagenet_like(1, 1, 3);
        assert_eq!(i.train.num_classes(), 20);
        assert_eq!(i.train.shape().len(), 3 * 16 * 16);
    }

    #[test]
    fn har_like_is_flat_561() {
        let h = SyntheticDataset::har_like(2, 1, 4);
        assert_eq!(h.train.shape(), FeatureShape::Flat(561));
        assert_eq!(h.train.num_classes(), 6);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = SyntheticDataset::mnist_like(3, 1, 42);
        let b = SyntheticDataset::mnist_like(3, 1, 42);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticDataset::mnist_like(3, 1, 1);
        let b = SyntheticDataset::mnist_like(3, 1, 2);
        assert_ne!(a.train, b.train);
    }

    #[test]
    fn classes_are_separable_signal_exceeds_zero() {
        // Mean intra-class distance should be well below mean inter-class
        // prototype distance; cheap proxy: per-class means must differ.
        let tt = SyntheticDataset::mnist_like(20, 1, 5);
        let ds = &tt.train;
        let dim = ds.shape().len();
        let mut means = vec![Vector::zeros(dim); 10];
        let hist = ds.class_histogram();
        for s in ds.iter() {
            let c = s.target.class().unwrap();
            means[c].axpy(1.0 / hist[c] as f32, &s.features);
        }
        let d01 = means[0].distance(&means[1]);
        assert!(d01 > 1.0, "class means are not separated: {d01}");
    }

    #[test]
    fn linear_regression_targets_follow_model() {
        let tt = linear_regression(4, 2, 100, 10, 0.0, 9);
        // With zero noise, the same x always maps to the same y direction:
        // verify linearity via additivity on two scaled copies is impossible
        // here, so instead check that targets are deterministic re-generation.
        let tt2 = linear_regression(4, 2, 100, 10, 0.0, 9);
        assert_eq!(tt.train, tt2.train);
        match &tt.train.sample(0).target {
            Target::Regression(y) => assert_eq!(y.len(), 2),
            _ => panic!("expected regression target"),
        }
    }

    #[test]
    fn roll_image_is_a_permutation() {
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let rolled = roll_image(&data, 1, 3, 4, 1, -2);
        let mut a = data.clone();
        let mut b = rolled.clone();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        assert_eq!(a, b);
        assert_ne!(data, rolled);
        // Rolling by (h, w) is identity.
        assert_eq!(roll_image(&data, 1, 3, 4, 3, 4), data);
    }

    #[test]
    fn har_groups_are_more_confusable_than_across_groups() {
        let spec = SyntheticSpec::har_like();
        let mut rng = StdRng::seed_from_u64(11);
        let protos = make_prototypes(&spec, &mut rng);
        // classes (0,1) share a base; (0,2) do not.
        let within = protos[0].distance(&protos[1]);
        let across = protos[0].distance(&protos[2]);
        assert!(
            within < across,
            "within-group distance {within} should be < across-group {across}"
        );
    }
}
