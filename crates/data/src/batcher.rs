//! Seeded, reshuffling mini-batch iteration.
//!
//! Each federated worker owns a [`Batcher`] over its local shard. A call to
//! [`Batcher::next_batch`] yields the indices of the next mini-batch
//! (batch size 64 in the paper); the order reshuffles at every epoch
//! boundary, and everything is reproducible from the construction seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An infinite stream of mini-batch index sets over `0..len`.
///
/// # Example
///
/// ```
/// use hieradmo_data::Batcher;
///
/// let mut b = Batcher::new(10, 4, 0);
/// let first = b.next_batch();
/// assert_eq!(first.len(), 4);
/// // After one epoch (ceil(10/4) = 3 batches) the order reshuffles.
/// ```
#[derive(Debug, Clone)]
pub struct Batcher {
    order: Vec<usize>,
    cursor: usize,
    batch_size: usize,
    rng: StdRng,
}

impl Batcher {
    /// Creates a batcher over `len` samples with the given batch size.
    ///
    /// The batch size is silently capped at `len` so tiny shards still
    /// produce full coverage.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `batch_size == 0`.
    pub fn new(len: usize, batch_size: usize, seed: u64) -> Self {
        assert!(len > 0, "cannot batch an empty dataset");
        assert!(batch_size > 0, "batch size must be positive");
        let mut b = Batcher {
            order: (0..len).collect(),
            cursor: 0,
            batch_size: batch_size.min(len),
            rng: StdRng::seed_from_u64(seed),
        };
        b.reshuffle();
        b
    }

    /// Number of samples covered per epoch.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Always `false`: construction rejects empty datasets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Effective batch size (may be smaller than requested for tiny shards).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Returns the indices of the next mini-batch.
    ///
    /// The final batch of an epoch may be short; the following call starts a
    /// freshly shuffled epoch.
    pub fn next_batch(&mut self) -> Vec<usize> {
        let mut batch = Vec::new();
        self.next_batch_into(&mut batch);
        batch
    }

    /// Writes the indices of the next mini-batch into `out`, clearing it
    /// first.
    ///
    /// Allocation-free once `out`'s capacity has reached the batch size —
    /// the execution engine reuses one buffer per worker across the whole
    /// run. Draws from the same stream as [`Batcher::next_batch`].
    pub fn next_batch_into(&mut self, out: &mut Vec<usize>) {
        if self.cursor >= self.order.len() {
            self.reshuffle();
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        out.clear();
        out.extend_from_slice(&self.order[self.cursor..end]);
        self.cursor = end;
    }

    fn reshuffle(&mut self) {
        for i in (1..self.order.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            self.order.swap(i, j);
        }
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn batches_cover_epoch_exactly() {
        let mut b = Batcher::new(10, 3, 1);
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.extend(b.next_batch());
        }
        assert_eq!(seen.len(), 10);
        let set: HashSet<_> = seen.iter().collect();
        assert_eq!(set.len(), 10, "each index appears exactly once per epoch");
    }

    #[test]
    fn batch_size_capped_at_len() {
        let mut b = Batcher::new(3, 64, 0);
        assert_eq!(b.batch_size(), 3);
        assert_eq!(b.next_batch().len(), 3);
    }

    #[test]
    fn reshuffles_between_epochs() {
        let mut b = Batcher::new(50, 50, 7);
        let e1 = b.next_batch();
        let e2 = b.next_batch();
        assert_ne!(e1, e2, "epochs should reshuffle");
        let s1: HashSet<_> = e1.into_iter().collect();
        let s2: HashSet<_> = e2.into_iter().collect();
        assert_eq!(s1, s2);
    }

    #[test]
    fn deterministic_by_seed() {
        let mut a = Batcher::new(20, 6, 99);
        let mut b = Batcher::new(20, 6, 99);
        for _ in 0..10 {
            assert_eq!(a.next_batch(), b.next_batch());
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_panics() {
        let _ = Batcher::new(0, 4, 0);
    }

    #[test]
    fn next_batch_into_draws_the_same_stream() {
        let mut a = Batcher::new(17, 5, 3);
        let mut b = Batcher::new(17, 5, 3);
        let mut buf = Vec::new();
        for _ in 0..8 {
            b.next_batch_into(&mut buf);
            assert_eq!(a.next_batch(), buf);
        }
    }
}
