//! Image augmentation utilities — the standard training-time transforms
//! (flip, shift, noise, cutout) for image-shaped datasets.
//!
//! The synthetic generators already apply translation jitter at sampling
//! time; these operate on *existing* datasets, e.g. to expand a worker's
//! shard or to stress-test a trained model's invariances.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hieradmo_tensor::Vector;

use crate::dataset::{Dataset, FeatureShape, Sample};

/// One augmentation operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Augmentation {
    /// Mirror horizontally.
    HorizontalFlip,
    /// Torus-roll by up to `max` pixels in each axis (random per sample).
    RandomShift {
        /// Maximum absolute shift per axis.
        max: usize,
    },
    /// Add i.i.d. uniform noise in `[-amplitude, amplitude]`.
    UniformNoise {
        /// Noise amplitude.
        amplitude: f32,
    },
    /// Zero a random `size × size` square (cutout regularization).
    Cutout {
        /// Side length of the zeroed square.
        size: usize,
    },
}

impl Augmentation {
    /// Applies the augmentation to one CHW image.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != c*h*w`, or if a [`Augmentation::Cutout`]
    /// square does not fit in the image.
    pub fn apply(
        &self,
        features: &Vector,
        c: usize,
        h: usize,
        w: usize,
        rng: &mut StdRng,
    ) -> Vector {
        assert_eq!(features.len(), c * h * w, "feature/shape mismatch");
        let data = features.as_slice();
        match *self {
            Augmentation::HorizontalFlip => {
                let mut out = vec![0.0f32; data.len()];
                for ch in 0..c {
                    for y in 0..h {
                        for x in 0..w {
                            out[(ch * h + y) * w + x] = data[(ch * h + y) * w + (w - 1 - x)];
                        }
                    }
                }
                Vector::from(out)
            }
            Augmentation::RandomShift { max } => {
                let s = max as i64;
                let dy = rng.gen_range(-s..=s);
                let dx = rng.gen_range(-s..=s);
                let mut out = vec![0.0f32; data.len()];
                for ch in 0..c {
                    for y in 0..h {
                        let sy = (y as i64 - dy).rem_euclid(h as i64) as usize;
                        for x in 0..w {
                            let sx = (x as i64 - dx).rem_euclid(w as i64) as usize;
                            out[(ch * h + y) * w + x] = data[(ch * h + sy) * w + sx];
                        }
                    }
                }
                Vector::from(out)
            }
            Augmentation::UniformNoise { amplitude } => data
                .iter()
                .map(|&v| v + rng.gen_range(-amplitude..=amplitude))
                .collect(),
            Augmentation::Cutout { size } => {
                assert!(size <= h && size <= w, "cutout {size} larger than image");
                let y0 = rng.gen_range(0..=h - size);
                let x0 = rng.gen_range(0..=w - size);
                let mut out = data.to_vec();
                for ch in 0..c {
                    for y in y0..y0 + size {
                        for x in x0..x0 + size {
                            out[(ch * h + y) * w + x] = 0.0;
                        }
                    }
                }
                Vector::from(out)
            }
        }
    }
}

/// Expands an image dataset: for each sample, appends `copies` augmented
/// variants produced by applying every augmentation in `pipeline` in
/// order. The original samples are retained.
///
/// # Panics
///
/// Panics if the dataset is not image-shaped.
pub fn augment_dataset(
    data: &Dataset,
    pipeline: &[Augmentation],
    copies: usize,
    seed: u64,
) -> Dataset {
    let (c, h, w) = match data.shape() {
        FeatureShape::Image {
            channels,
            height,
            width,
        } => (channels, height, width),
        FeatureShape::Flat(d) => panic!("cannot augment flat features of dim {d}"),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples: Vec<Sample> = data.samples().to_vec();
    for sample in data.iter() {
        for _ in 0..copies {
            let mut feats = sample.features.clone();
            for aug in pipeline {
                feats = aug.apply(&feats, c, h, w, &mut rng);
            }
            samples.push(Sample {
                features: feats,
                target: sample.target.clone(),
            });
        }
    }
    Dataset::new(samples, data.shape(), data.num_classes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticDataset;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn flip_is_an_involution() {
        let img: Vector = (0..12).map(|i| i as f32).collect();
        let mut r = rng();
        let once = Augmentation::HorizontalFlip.apply(&img, 1, 3, 4, &mut r);
        let twice = Augmentation::HorizontalFlip.apply(&once, 1, 3, 4, &mut r);
        assert_eq!(twice, img);
        assert_ne!(once, img);
    }

    #[test]
    fn shift_preserves_pixel_multiset() {
        let img: Vector = (0..16).map(|i| i as f32).collect();
        let mut r = rng();
        let shifted = Augmentation::RandomShift { max: 2 }.apply(&img, 1, 4, 4, &mut r);
        let mut a: Vec<f32> = img.as_slice().to_vec();
        let mut b: Vec<f32> = shifted.as_slice().to_vec();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        assert_eq!(a, b);
    }

    #[test]
    fn noise_stays_within_amplitude() {
        let img = Vector::zeros(20);
        let mut r = rng();
        let noisy = Augmentation::UniformNoise { amplitude: 0.3 }.apply(&img, 1, 4, 5, &mut r);
        assert!(noisy.iter().all(|&v| v.abs() <= 0.3));
        assert!(noisy.max_abs() > 0.0);
    }

    #[test]
    fn cutout_zeroes_exactly_a_square() {
        let img = Vector::filled(25, 1.0);
        let mut r = rng();
        let cut = Augmentation::Cutout { size: 2 }.apply(&img, 1, 5, 5, &mut r);
        let zeros = cut.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 4);
    }

    #[test]
    fn augment_dataset_grows_and_preserves_labels() {
        let ds = SyntheticDataset::mnist_like(2, 1, 1).train;
        let aug = augment_dataset(
            &ds,
            &[
                Augmentation::HorizontalFlip,
                Augmentation::UniformNoise { amplitude: 0.1 },
            ],
            2,
            5,
        );
        assert_eq!(aug.len(), ds.len() * 3);
        assert_eq!(aug.class_histogram(), {
            let mut h = ds.class_histogram();
            h.iter_mut().for_each(|n| *n *= 3);
            h
        });
    }

    #[test]
    #[should_panic(expected = "cannot augment flat")]
    fn flat_dataset_panics() {
        let ds = SyntheticDataset::har_like(1, 1, 1).train;
        let _ = augment_dataset(&ds, &[Augmentation::HorizontalFlip], 1, 0);
    }
}
