//! IDX file-format loader (the format of the real MNIST distribution).
//!
//! The reproduction ships synthetic datasets (this environment is
//! offline), but a downstream user with `train-images-idx3-ubyte` /
//! `train-labels-idx1-ubyte` files on disk can load the *real* MNIST and
//! run every experiment unchanged: the loader produces the same
//! [`Dataset`] type with `1×28×28` image features scaled to `[0, 1]`.
//!
//! Format reference (LeCun et al.): big-endian magic
//! `[0, 0, dtype, ndim]`, then `ndim` u32 dimension sizes, then the raw
//! data. Only the `u8` dtype (0x08) used by MNIST is supported.

use std::fs;
use std::io;
use std::path::Path;

use hieradmo_tensor::Vector;

use crate::dataset::{Dataset, FeatureShape, Sample, Target};

/// Errors from IDX parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdxError {
    /// File shorter than its own header/data declaration.
    Truncated,
    /// First two magic bytes were not zero.
    BadMagic,
    /// Data type byte other than 0x08 (unsigned byte).
    UnsupportedType(u8),
    /// Image and label files disagree on the sample count.
    CountMismatch {
        /// Images in the image file.
        images: usize,
        /// Labels in the label file.
        labels: usize,
    },
    /// A label was outside `0..classes`.
    BadLabel(u8),
}

impl std::fmt::Display for IdxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdxError::Truncated => write!(f, "idx file truncated"),
            IdxError::BadMagic => write!(f, "bad idx magic bytes"),
            IdxError::UnsupportedType(t) => write!(f, "unsupported idx data type 0x{t:02x}"),
            IdxError::CountMismatch { images, labels } => {
                write!(f, "{images} images but {labels} labels")
            }
            IdxError::BadLabel(l) => write!(f, "label {l} out of range"),
        }
    }
}

impl std::error::Error for IdxError {}

/// A parsed IDX tensor: dimension sizes plus flat `u8` data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdxTensor {
    /// Dimension sizes, outermost first.
    pub dims: Vec<usize>,
    /// Raw bytes in row-major order.
    pub data: Vec<u8>,
}

/// Parses an in-memory IDX byte buffer.
///
/// # Errors
///
/// Returns [`IdxError`] for truncation, bad magic, or non-u8 data.
pub fn parse_idx(bytes: &[u8]) -> Result<IdxTensor, IdxError> {
    if bytes.len() < 4 {
        return Err(IdxError::Truncated);
    }
    if bytes[0] != 0 || bytes[1] != 0 {
        return Err(IdxError::BadMagic);
    }
    let dtype = bytes[2];
    if dtype != 0x08 {
        return Err(IdxError::UnsupportedType(dtype));
    }
    let ndim = bytes[3] as usize;
    let header = 4 + 4 * ndim;
    if bytes.len() < header {
        return Err(IdxError::Truncated);
    }
    let mut dims = Vec::with_capacity(ndim);
    for d in 0..ndim {
        let off = 4 + 4 * d;
        let size = u32::from_be_bytes(
            bytes[off..off + 4]
                .try_into()
                .expect("bounds checked above"),
        ) as usize;
        dims.push(size);
    }
    let total: usize = dims.iter().product();
    if bytes.len() < header + total {
        return Err(IdxError::Truncated);
    }
    Ok(IdxTensor {
        dims,
        data: bytes[header..header + total].to_vec(),
    })
}

/// Builds a classification [`Dataset`] from parsed MNIST-style image and
/// label tensors: images `(n, h, w)` scaled to `[0, 1]`, labels `(n,)`.
///
/// # Errors
///
/// Returns [`IdxError`] if shapes are inconsistent or a label is
/// `>= classes`.
pub fn dataset_from_idx(
    images: &IdxTensor,
    labels: &IdxTensor,
    classes: usize,
) -> Result<Dataset, IdxError> {
    let (n, h, w) = match images.dims[..] {
        [n, h, w] => (n, h, w),
        _ => return Err(IdxError::Truncated),
    };
    let label_count = labels.dims.first().copied().unwrap_or(0);
    if label_count != n {
        return Err(IdxError::CountMismatch {
            images: n,
            labels: label_count,
        });
    }
    let mut samples = Vec::with_capacity(n);
    for i in 0..n {
        let label = labels.data[i];
        if usize::from(label) >= classes {
            return Err(IdxError::BadLabel(label));
        }
        let start = i * h * w;
        let features: Vector = images.data[start..start + h * w]
            .iter()
            .map(|&p| f32::from(p) / 255.0)
            .collect();
        samples.push(Sample {
            features,
            target: Target::Class(usize::from(label)),
        });
    }
    Ok(Dataset::new(
        samples,
        FeatureShape::Image {
            channels: 1,
            height: h,
            width: w,
        },
        classes,
    ))
}

/// Loads a real MNIST-format dataset from the standard pair of IDX files.
///
/// # Errors
///
/// Propagates I/O errors; parse failures map to
/// [`io::ErrorKind::InvalidData`].
pub fn load_mnist(images_path: &Path, labels_path: &Path) -> io::Result<Dataset> {
    let to_io = |e: IdxError| io::Error::new(io::ErrorKind::InvalidData, e);
    let images = parse_idx(&fs::read(images_path)?).map_err(to_io)?;
    let labels = parse_idx(&fs::read(labels_path)?).map_err(to_io)?;
    dataset_from_idx(&images, &labels, 10).map_err(to_io)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a valid IDX image buffer: n images of h×w incrementing bytes.
    fn idx_images(n: usize, h: usize, w: usize) -> Vec<u8> {
        let mut b = vec![0, 0, 0x08, 3];
        for &d in &[n, h, w] {
            b.extend_from_slice(&(d as u32).to_be_bytes());
        }
        b.extend((0..n * h * w).map(|i| (i % 256) as u8));
        b
    }

    fn idx_labels(labels: &[u8]) -> Vec<u8> {
        let mut b = vec![0, 0, 0x08, 1];
        b.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        b.extend_from_slice(labels);
        b
    }

    #[test]
    fn parses_well_formed_files() {
        let img = parse_idx(&idx_images(2, 3, 3)).unwrap();
        assert_eq!(img.dims, vec![2, 3, 3]);
        assert_eq!(img.data.len(), 18);
        let lbl = parse_idx(&idx_labels(&[7, 1])).unwrap();
        assert_eq!(lbl.dims, vec![2]);
        assert_eq!(lbl.data, vec![7, 1]);
    }

    #[test]
    fn builds_dataset_with_scaled_pixels() {
        let img = parse_idx(&idx_images(2, 2, 2)).unwrap();
        let lbl = parse_idx(&idx_labels(&[3, 9])).unwrap();
        let ds = dataset_from_idx(&img, &lbl, 10).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.shape().len(), 4);
        assert_eq!(ds.sample(0).target.class(), Some(3));
        // Pixel 3 of image 0 is byte 3 → 3/255.
        assert!((ds.sample(0).features[3] - 3.0 / 255.0).abs() < 1e-6);
        // All pixels normalized.
        for s in ds.iter() {
            assert!(s.features.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert_eq!(parse_idx(&[0, 0]), Err(IdxError::Truncated));
        assert_eq!(
            parse_idx(&[1, 0, 8, 1, 0, 0, 0, 0]),
            Err(IdxError::BadMagic)
        );
        assert_eq!(
            parse_idx(&[0, 0, 0x0D, 1, 0, 0, 0, 0]),
            Err(IdxError::UnsupportedType(0x0D))
        );
        // Declared 5 images but no data.
        let mut short = vec![0, 0, 0x08, 3];
        for &d in &[5u32, 28, 28] {
            short.extend_from_slice(&d.to_be_bytes());
        }
        assert_eq!(parse_idx(&short), Err(IdxError::Truncated));
    }

    #[test]
    fn count_and_label_mismatches_are_reported() {
        let img = parse_idx(&idx_images(2, 2, 2)).unwrap();
        let lbl_short = parse_idx(&idx_labels(&[1])).unwrap();
        assert_eq!(
            dataset_from_idx(&img, &lbl_short, 10),
            Err(IdxError::CountMismatch {
                images: 2,
                labels: 1
            })
        );
        let lbl_bad = parse_idx(&idx_labels(&[1, 12])).unwrap();
        assert_eq!(
            dataset_from_idx(&img, &lbl_bad, 10),
            Err(IdxError::BadLabel(12))
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("hieradmo-idx-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ip = dir.join("images-idx3-ubyte");
        let lp = dir.join("labels-idx1-ubyte");
        std::fs::write(&ip, idx_images(3, 4, 4)).unwrap();
        std::fs::write(&lp, idx_labels(&[0, 5, 9])).unwrap();
        let ds = load_mnist(&ip, &lp).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.class_histogram()[5], 1);
        std::fs::remove_file(&ip).ok();
        std::fs::remove_file(&lp).ok();
    }
}
