//! Dataset substrate for the HierAdMo reproduction.
//!
//! The paper evaluates on MNIST, CIFAR-10, (Tiny-)ImageNet and UCI-HAR.
//! Those datasets cannot be downloaded in this offline reproduction, so this
//! crate provides *synthetic equivalents* (see `DESIGN.md` §4): every
//! generator produces a classification (or regression) problem with the same
//! tensor shapes, the same number of classes, and a controllable difficulty,
//! so the federated-learning dynamics the paper studies — non-i.i.d.
//! partitions, gradient divergence between workers and edges, momentum
//! (dis)agreement — are all exercised on realistic shapes.
//!
//! Contents:
//!
//! - [`Dataset`] / [`Sample`] / [`Target`] — in-memory dataset model.
//! - [`synthetic`] — the four dataset generators plus linear-regression data.
//! - [`partition`] — i.i.d., *x*-class non-i.i.d. (the paper's scheme), and
//!   Dirichlet partitioners.
//! - [`batcher`] — seeded, reshuffling mini-batch iteration (batch size 64
//!   in the paper).
//!
//! # Example
//!
//! ```
//! use hieradmo_data::synthetic::SyntheticDataset;
//! use hieradmo_data::partition::x_class_partition;
//!
//! let ds = SyntheticDataset::mnist_like(200, 50, 1).train;
//! // Paper Fig. 2(e): 3-class non-i.i.d. split across 4 workers.
//! let shards = x_class_partition(&ds, 4, 3, 99);
//! assert_eq!(shards.len(), 4);
//! for shard in &shards {
//!     assert!(shard.class_histogram().iter().filter(|&&c| c > 0).count() <= 3);
//! }
//! ```

#![deny(missing_docs)]

pub mod augment;
pub mod batcher;
pub mod dataset;
pub mod idx;
pub mod partition;
pub mod synthetic;

pub use batcher::Batcher;
pub use dataset::{Dataset, FeatureShape, Sample, Target};
