//! In-memory dataset model shared by all generators and partitioners.

use hieradmo_tensor::Vector;
use serde::{Deserialize, Serialize};

/// Shape metadata of a sample's feature vector.
///
/// Flat features feed linear/logistic/MLP models directly; image features
/// carry the `(channels, height, width)` needed by convolutional models to
/// reshape the flat storage into an NCHW tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureShape {
    /// A flat feature vector of the given dimension.
    Flat(usize),
    /// An image with `(channels, height, width)`; the flat storage is in
    /// CHW order.
    Image {
        /// Channels.
        channels: usize,
        /// Height in pixels.
        height: usize,
        /// Width in pixels.
        width: usize,
    },
}

impl FeatureShape {
    /// Total number of feature values per sample.
    pub fn len(&self) -> usize {
        match *self {
            FeatureShape::Flat(d) => d,
            FeatureShape::Image {
                channels,
                height,
                width,
            } => channels * height * width,
        }
    }

    /// Returns `true` for a zero-length shape.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Supervised target of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Target {
    /// Classification label in `0..num_classes`.
    Class(usize),
    /// Regression target vector.
    Regression(Vector),
}

impl Target {
    /// The class label, if this is a classification target.
    pub fn class(&self) -> Option<usize> {
        match self {
            Target::Class(c) => Some(*c),
            Target::Regression(_) => None,
        }
    }
}

/// One supervised sample: a feature vector plus its target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Feature values (flat storage; interpret via [`Dataset::shape`]).
    pub features: Vector,
    /// Supervised target.
    pub target: Target,
}

/// An in-memory dataset: samples plus shape/class metadata.
///
/// # Example
///
/// ```
/// use hieradmo_data::{Dataset, FeatureShape, Sample, Target};
/// use hieradmo_tensor::Vector;
///
/// let ds = Dataset::new(
///     vec![Sample { features: Vector::from(vec![1.0]), target: Target::Class(0) }],
///     FeatureShape::Flat(1),
///     2,
/// );
/// assert_eq!(ds.len(), 1);
/// assert_eq!(ds.class_histogram(), vec![1, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<Sample>,
    shape: FeatureShape,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if any sample's feature length disagrees with `shape`, or if a
    /// classification label is `>= num_classes`.
    pub fn new(samples: Vec<Sample>, shape: FeatureShape, num_classes: usize) -> Self {
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(
                s.features.len(),
                shape.len(),
                "sample {i} feature length {} does not match shape {:?}",
                s.features.len(),
                shape
            );
            if let Target::Class(c) = s.target {
                assert!(
                    c < num_classes,
                    "sample {i} label {c} out of range for {num_classes} classes"
                );
            }
        }
        Dataset {
            samples,
            shape,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Feature shape metadata.
    pub fn shape(&self) -> FeatureShape {
        self.shape
    }

    /// Number of classes (0 for pure regression datasets).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Borrows all samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Borrows one sample.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn sample(&self, i: usize) -> &Sample {
        &self.samples[i]
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Builds a sub-dataset from the given sample indices (cloning samples).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let samples = indices.iter().map(|&i| self.samples[i].clone()).collect();
        Dataset {
            samples,
            shape: self.shape,
            num_classes: self.num_classes,
        }
    }

    /// Per-class sample counts (length = `num_classes`). Regression samples
    /// are not counted.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for s in &self.samples {
            if let Target::Class(c) = s.target {
                hist[c] += 1;
            }
        }
        hist
    }

    /// Splits into `(first, second)` where `first` holds roughly
    /// `fraction` of each class (stratified when the dataset has classes,
    /// plain prefix split otherwise). Deterministic per `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1` and both halves end up non-empty.
    pub fn split(&self, fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0,1), got {fraction}"
        );
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut first = Vec::new();
        let mut second = Vec::new();
        let mut assign = |mut idxs: Vec<usize>| {
            // Fisher–Yates then prefix split.
            for i in (1..idxs.len()).rev() {
                let j = rng.gen_range(0..=i);
                idxs.swap(i, j);
            }
            let cut = ((idxs.len() as f64) * fraction).round() as usize;
            first.extend_from_slice(&idxs[..cut]);
            second.extend_from_slice(&idxs[cut..]);
        };
        if self.num_classes > 0 {
            for class in 0..self.num_classes {
                assign(self.indices_of_class(class));
            }
        } else {
            assign((0..self.len()).collect());
        }
        assert!(
            !first.is_empty() && !second.is_empty(),
            "split produced an empty half; use a larger dataset or different fraction"
        );
        (self.subset(&first), self.subset(&second))
    }

    /// Indices of all samples with the given class label.
    pub fn indices_of_class(&self, class: usize) -> Vec<usize> {
        self.samples
            .iter()
            .enumerate()
            .filter_map(|(i, s)| (s.target.class() == Some(class)).then_some(i))
            .collect()
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

/// A train/test pair as produced by every synthetic generator.
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// Training split (partitioned across workers).
    pub train: Dataset,
    /// Held-out test split (used for the accuracy columns of Table II).
    pub test: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::new(
            vec![
                Sample {
                    features: Vector::from(vec![0.0, 1.0]),
                    target: Target::Class(0),
                },
                Sample {
                    features: Vector::from(vec![1.0, 0.0]),
                    target: Target::Class(1),
                },
                Sample {
                    features: Vector::from(vec![0.5, 0.5]),
                    target: Target::Class(1),
                },
            ],
            FeatureShape::Flat(2),
            2,
        )
    }

    #[test]
    fn histogram_counts_classes() {
        assert_eq!(tiny().class_histogram(), vec![1, 2]);
    }

    #[test]
    fn subset_preserves_metadata() {
        let ds = tiny();
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.shape(), ds.shape());
        assert_eq!(sub.num_classes(), 2);
        assert_eq!(sub.sample(0).target.class(), Some(1));
    }

    #[test]
    fn indices_of_class_finds_all() {
        assert_eq!(tiny().indices_of_class(1), vec![1, 2]);
        assert_eq!(tiny().indices_of_class(0), vec![0]);
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn out_of_range_label_panics() {
        let _ = Dataset::new(
            vec![Sample {
                features: Vector::from(vec![0.0]),
                target: Target::Class(5),
            }],
            FeatureShape::Flat(1),
            2,
        );
    }

    #[test]
    #[should_panic(expected = "feature length")]
    fn wrong_feature_length_panics() {
        let _ = Dataset::new(
            vec![Sample {
                features: Vector::from(vec![0.0, 1.0]),
                target: Target::Class(0),
            }],
            FeatureShape::Flat(1),
            2,
        );
    }

    #[test]
    fn split_is_stratified_and_exact() {
        use crate::synthetic::SyntheticDataset;
        let ds = SyntheticDataset::mnist_like(10, 1, 3).train; // 100 samples
        let (a, b) = ds.split(0.7, 9);
        assert_eq!(a.len() + b.len(), ds.len());
        // Stratified: each class contributes 7/3.
        assert_eq!(a.class_histogram(), vec![7; 10]);
        assert_eq!(b.class_histogram(), vec![3; 10]);
        // Deterministic.
        let (a2, _) = ds.split(0.7, 9);
        assert_eq!(a, a2);
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0,1)")]
    fn split_rejects_bad_fraction() {
        let _ = tiny().split(1.0, 0);
    }

    #[test]
    fn image_shape_len() {
        let s = FeatureShape::Image {
            channels: 3,
            height: 4,
            width: 5,
        };
        assert_eq!(s.len(), 60);
        assert!(!s.is_empty());
    }

    #[test]
    fn iteration() {
        let ds = tiny();
        assert_eq!(ds.iter().count(), 3);
        assert_eq!((&ds).into_iter().count(), 3);
    }
}
