//! Minimal fixed-width text tables for experiment reports.

use std::fmt;

/// A text table with a header row, rendered with aligned columns — used by
/// every experiment binary to print paper-style result tables.
///
/// # Example
///
/// ```
/// use hieradmo_metrics::Table;
///
/// let mut t = Table::new(vec!["Algorithm".into(), "Accuracy".into()]);
/// t.add_row(vec!["HierAdMo".into(), "86.16".into()]);
/// let rendered = t.to_string();
/// assert!(rendered.contains("HierAdMo"));
/// assert!(rendered.lines().count() >= 3); // header + rule + row
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (cell, w) in cells.iter().zip(&widths) {
                if !first {
                    write!(f, "  ")?;
                }
                first = false;
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        render_row(f, &self.header)?;
        let rule_len: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(rule_len))?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["A".into(), "LongHeader".into()]);
        t.add_row(vec!["xxxxx".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // The second column starts at the same offset in header and row.
        let header_off = lines[0].find("LongHeader").unwrap();
        let row_off = lines[2].find('1').unwrap();
        assert_eq!(header_off, row_off);
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["A".into(), "B".into()]);
        t.add_row(vec!["only-one".into()]);
    }
}
