//! Mean ± standard-deviation summaries over repeated seeded runs — the
//! "86.16 ± 0.04" cells of Table II.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Sample mean and (population) standard deviation of a set of runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation (σ, not σₙ₋₁ — with the paper's 3–5
    /// repetitions the distinction is cosmetic and σ avoids NaN for n=1).
    pub std: f64,
}

impl MeanStd {
    /// Summarizes a non-empty slice of values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize zero values");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        MeanStd {
            mean,
            std: var.sqrt(),
        }
    }

    /// Renders as a percentage: `86.16 ± 0.04`.
    pub fn as_percent(&self) -> String {
        format!("{:.2} ± {:.2}", self.mean * 100.0, self.std * 100.0)
    }
}

impl fmt::Display for MeanStd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_constant_is_exact() {
        let s = MeanStd::of(&[0.5, 0.5, 0.5]);
        assert_eq!(s.mean, 0.5);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn known_values() {
        let s = MeanStd::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_value_has_zero_std() {
        let s = MeanStd::of(&[0.9]);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn percent_rendering() {
        let s = MeanStd::of(&[0.8616, 0.8616]);
        assert_eq!(s.as_percent(), "86.16 ± 0.00");
    }

    #[test]
    #[should_panic(expected = "zero values")]
    fn empty_panics() {
        let _ = MeanStd::of(&[]);
    }
}
