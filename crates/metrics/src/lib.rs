//! Metrics for the HierAdMo reproduction: convergence curves,
//! time-to-accuracy lookups, seed summaries and report tables.
//!
//! # Example
//!
//! ```
//! use hieradmo_metrics::{ConvergenceCurve, EvalPoint};
//!
//! let mut curve = ConvergenceCurve::new();
//! curve.push(EvalPoint { iteration: 100, train_loss: 1.2, test_loss: 1.3, test_accuracy: 0.55 });
//! curve.push(EvalPoint { iteration: 200, train_loss: 0.6, test_loss: 0.7, test_accuracy: 0.91 });
//! assert_eq!(curve.iterations_to_accuracy(0.9), Some(200));
//! assert_eq!(curve.final_accuracy(), Some(0.91));
//! ```

#![deny(missing_docs)]

pub mod export;
pub mod summary;
pub mod table;
pub mod timed;

pub use summary::MeanStd;
pub use table::Table;
pub use timed::{
    ActorAdversaries, ActorFaults, ActorUtilization, AdversaryCounters, FaultCounters,
    PhaseBreakdown, TimedCurve, TimedPoint, TopologyCounters,
};

use serde::{Deserialize, Serialize};

/// One evaluation of the global model during training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalPoint {
    /// Local iteration `t` at which the evaluation happened.
    pub iteration: usize,
    /// Mean training loss of the global model.
    pub train_loss: f64,
    /// Mean test loss of the global model.
    pub test_loss: f64,
    /// Test accuracy in `[0, 1]`.
    pub test_accuracy: f64,
}

/// Accuracy/loss as a function of training iteration — the raw material of
/// every figure in the paper.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceCurve {
    points: Vec<EvalPoint>,
}

impl ConvergenceCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        ConvergenceCurve { points: Vec::new() }
    }

    /// Appends an evaluation point.
    ///
    /// # Panics
    ///
    /// Panics if `point.iteration` is not strictly increasing.
    pub fn push(&mut self, point: EvalPoint) {
        if let Some(last) = self.points.last() {
            assert!(
                point.iteration > last.iteration,
                "iterations must be strictly increasing: {} after {}",
                point.iteration,
                last.iteration
            );
        }
        self.points.push(point);
    }

    /// Borrows the points.
    pub fn points(&self) -> &[EvalPoint] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Accuracy at the last evaluation, if any.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.points.last().map(|p| p.test_accuracy)
    }

    /// Best accuracy over the whole run, if any.
    pub fn best_accuracy(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.test_accuracy)
            .fold(None, |best, a| Some(best.map_or(a, |b: f64| b.max(a))))
    }

    /// First iteration at which accuracy reached `target`, if ever — the
    /// quantity behind the paper's Fig. 2(h)/(l) "time to 0.95 accuracy".
    pub fn iterations_to_accuracy(&self, target: f64) -> Option<usize> {
        self.points
            .iter()
            .find(|p| p.test_accuracy >= target)
            .map(|p| p.iteration)
    }

    /// Final training loss, if any.
    pub fn final_train_loss(&self) -> Option<f64> {
        self.points.last().map(|p| p.train_loss)
    }
}

impl FromIterator<EvalPoint> for ConvergenceCurve {
    fn from_iter<I: IntoIterator<Item = EvalPoint>>(iter: I) -> Self {
        let mut c = ConvergenceCurve::new();
        for p in iter {
            c.push(p);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(it: usize, acc: f64) -> EvalPoint {
        EvalPoint {
            iteration: it,
            train_loss: 1.0 / (it as f64),
            test_loss: 1.1 / (it as f64),
            test_accuracy: acc,
        }
    }

    #[test]
    fn empty_curve_has_no_answers() {
        let c = ConvergenceCurve::new();
        assert!(c.is_empty());
        assert_eq!(c.final_accuracy(), None);
        assert_eq!(c.best_accuracy(), None);
        assert_eq!(c.iterations_to_accuracy(0.5), None);
    }

    #[test]
    fn time_to_accuracy_finds_first_crossing() {
        let c: ConvergenceCurve = [pt(10, 0.3), pt(20, 0.8), pt(30, 0.7), pt(40, 0.9)]
            .into_iter()
            .collect();
        assert_eq!(c.iterations_to_accuracy(0.75), Some(20));
        assert_eq!(c.iterations_to_accuracy(0.95), None);
        assert_eq!(c.best_accuracy(), Some(0.9));
        assert_eq!(c.final_accuracy(), Some(0.9));
        assert_eq!(c.len(), 4);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_iterations_panic() {
        let mut c = ConvergenceCurve::new();
        c.push(pt(10, 0.1));
        c.push(pt(10, 0.2));
    }
}
