//! Exporters: convergence curves as CSV (for plotting) and whole runs as
//! JSON (for archival next to `EXPERIMENTS.md`).

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::timed::{
    ActorAdversaries, ActorFaults, ActorUtilization, PhaseBreakdown, TimedCurve, TopologyCounters,
};
use crate::{ConvergenceCurve, EvalPoint};

/// Renders a curve as CSV with a header row.
///
/// # Example
///
/// ```
/// use hieradmo_metrics::{ConvergenceCurve, EvalPoint, export};
///
/// let curve: ConvergenceCurve = [EvalPoint {
///     iteration: 10, train_loss: 0.5, test_loss: 0.6, test_accuracy: 0.8,
/// }].into_iter().collect();
/// let csv = export::curve_to_csv(&curve);
/// assert!(csv.starts_with("iteration,train_loss,test_loss,test_accuracy\n"));
/// assert!(csv.contains("10,"));
/// ```
pub fn curve_to_csv(curve: &ConvergenceCurve) -> String {
    let mut out = String::from("iteration,train_loss,test_loss,test_accuracy\n");
    for p in curve.points() {
        writeln!(
            out,
            "{},{},{},{}",
            p.iteration, p.train_loss, p.test_loss, p.test_accuracy
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Parses a curve back from [`curve_to_csv`] output.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed input.
pub fn curve_from_csv(csv: &str) -> Result<ConvergenceCurve, String> {
    let mut curve = ConvergenceCurve::new();
    for (lineno, line) in csv.lines().enumerate() {
        if lineno == 0 {
            if line != "iteration,train_loss,test_loss,test_accuracy" {
                return Err(format!("unexpected header: {line}"));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(format!(
                "line {}: expected 4 fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let parse_f = |s: &str| -> Result<f64, String> {
            s.parse().map_err(|e| format!("line {}: {e}", lineno + 1))
        };
        curve.push(EvalPoint {
            iteration: fields[0]
                .parse()
                .map_err(|e| format!("line {}: {e}", lineno + 1))?,
            train_loss: parse_f(fields[1])?,
            test_loss: parse_f(fields[2])?,
            test_accuracy: parse_f(fields[3])?,
        });
    }
    Ok(curve)
}

/// Multiple named curves side by side as CSV (one block per curve), for
/// figure-style comparisons.
///
/// # Panics
///
/// Panics if `curves` is empty.
pub fn comparison_to_csv(curves: &[(&str, &ConvergenceCurve)]) -> String {
    assert!(!curves.is_empty(), "need at least one curve");
    let mut out = String::from("algorithm,iteration,train_loss,test_loss,test_accuracy\n");
    for (name, curve) in curves {
        for p in curve.points() {
            writeln!(
                out,
                "{name},{},{},{},{}",
                p.iteration, p.train_loss, p.test_loss, p.test_accuracy
            )
            .expect("writing to String cannot fail");
        }
    }
    out
}

/// Everything a bench run persists about one training run: the curve plus
/// the per-phase wall-clock breakdown (`RunResult::timings` in
/// `hieradmo-core`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Algorithm name (Table II row label).
    pub algorithm: String,
    /// The convergence curve of the run.
    pub curve: ConvergenceCurve,
    /// Per-phase wall-clock durations.
    pub timings: PhaseBreakdown,
}

/// Everything a co-simulation run persists: a time-indexed curve, the
/// policy it ran under, its time-to-target, and per-actor utilization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimRunRecord {
    /// Algorithm name.
    pub algorithm: String,
    /// Sync-policy label, e.g. `"full-sync"` or `"deadline(q=0.5,300ms)"`.
    pub policy: String,
    /// Accuracy versus simulated seconds (monotone by construction).
    pub timed_curve: TimedCurve,
    /// Simulated seconds until the target accuracy was first reached
    /// (`None` if never), together with the target used.
    pub target_accuracy: f64,
    /// Simulated seconds at which `target_accuracy` was first reached.
    pub time_to_target_s: Option<f64>,
    /// Per-actor busy time and utilization.
    pub utilization: Vec<ActorUtilization>,
    /// Per-actor fault tallies from the fault-injection layer. Empty for
    /// fault-free runs; absent in records written before fault injection
    /// existed, which deserialize to empty.
    #[serde(default)]
    pub faults: Vec<ActorFaults>,
    /// Per-actor adversary tallies from the Byzantine-injection layer.
    /// Empty for honest runs; absent in records written before adversary
    /// injection existed, which deserialize to empty.
    #[serde(default)]
    pub adversaries: Vec<ActorAdversaries>,
    /// Total events processed by the discrete-event runtime, as a typed
    /// number (not a stringified table cell). Zero in records written
    /// before run statistics existed.
    #[serde(default)]
    pub events: u64,
    /// Total simulated wall-clock seconds for the run. Zero in records
    /// written before run statistics existed.
    #[serde(default)]
    pub simulated_seconds: f64,
    /// Final test accuracy — the last point of `timed_curve` — as a typed
    /// number. `None` for an empty curve and in legacy records.
    #[serde(default)]
    pub final_accuracy: Option<f64>,
    /// Churn tallies from the elastic topology layer. All-zero for
    /// frozen-tree runs; absent in records written before elastic
    /// topology existed, which deserialize to all-zero.
    #[serde(default)]
    pub topology: TopologyCounters,
}

impl SimRunRecord {
    /// Builds a record, deriving `time_to_target_s` from the curve.
    pub fn new(
        algorithm: impl Into<String>,
        policy: impl Into<String>,
        timed_curve: TimedCurve,
        target_accuracy: f64,
        utilization: Vec<ActorUtilization>,
    ) -> Self {
        let time_to_target_s = timed_curve.time_to_accuracy(target_accuracy);
        let final_accuracy = timed_curve.points().last().map(|p| p.test_accuracy);
        SimRunRecord {
            algorithm: algorithm.into(),
            policy: policy.into(),
            timed_curve,
            target_accuracy,
            time_to_target_s,
            utilization,
            faults: Vec::new(),
            adversaries: Vec::new(),
            events: 0,
            simulated_seconds: 0.0,
            final_accuracy,
            topology: TopologyCounters::default(),
        }
    }

    /// Attaches the runtime's event count and simulated duration
    /// (builder style). These land in the JSON as typed numbers so
    /// downstream tooling never has to parse table-cell strings.
    pub fn with_run_stats(mut self, events: u64, simulated_seconds: f64) -> Self {
        self.events = events;
        self.simulated_seconds = simulated_seconds;
        self
    }

    /// Attaches per-actor fault tallies (builder style).
    pub fn with_faults(mut self, faults: Vec<ActorFaults>) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches per-actor adversary tallies (builder style).
    pub fn with_adversaries(mut self, adversaries: Vec<ActorAdversaries>) -> Self {
        self.adversaries = adversaries;
        self
    }

    /// Attaches the elastic topology layer's churn tallies (builder
    /// style).
    pub fn with_topology(mut self, topology: TopologyCounters) -> Self {
        self.topology = topology;
        self
    }
}

/// Serializes a [`RunRecord`] as JSON.
///
/// # Example
///
/// ```
/// use hieradmo_metrics::export::{run_to_json, run_from_json, RunRecord};
/// use hieradmo_metrics::timed::PhaseBreakdown;
/// use hieradmo_metrics::ConvergenceCurve;
///
/// let rec = RunRecord {
///     algorithm: "HierAdMo".into(),
///     curve: ConvergenceCurve::new(),
///     timings: PhaseBreakdown { local_steps_ms: 12.5, ..Default::default() },
/// };
/// let back = run_from_json(&run_to_json(&rec)).unwrap();
/// assert_eq!(back, rec);
/// ```
pub fn run_to_json(record: &RunRecord) -> String {
    serde_json::to_string(record).expect("RunRecord serialization cannot fail")
}

/// Parses a [`RunRecord`] back from [`run_to_json`] output.
///
/// # Errors
///
/// Returns the parser's message on malformed input.
pub fn run_from_json(json: &str) -> Result<RunRecord, String> {
    serde_json::from_str(json).map_err(|e| e.to_string())
}

/// Serializes a [`SimRunRecord`] as JSON.
pub fn sim_run_to_json(record: &SimRunRecord) -> String {
    serde_json::to_string(record).expect("SimRunRecord serialization cannot fail")
}

/// Parses a [`SimRunRecord`] back from [`sim_run_to_json`] output.
///
/// # Errors
///
/// Returns the parser's message on malformed input.
pub fn sim_run_from_json(json: &str) -> Result<SimRunRecord, String> {
    serde_json::from_str(json).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timed::TimedPoint;

    fn curve() -> ConvergenceCurve {
        [
            EvalPoint {
                iteration: 10,
                train_loss: 1.5,
                test_loss: 1.6,
                test_accuracy: 0.4,
            },
            EvalPoint {
                iteration: 20,
                train_loss: 0.8,
                test_loss: 0.9,
                test_accuracy: 0.7,
            },
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn csv_round_trips() {
        let c = curve();
        let csv = curve_to_csv(&c);
        let back = curve_from_csv(&csv).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn rejects_bad_header_and_ragged_rows() {
        assert!(curve_from_csv("nope\n1,2,3,4").is_err());
        let bad = "iteration,train_loss,test_loss,test_accuracy\n1,2,3\n";
        let err = curve_from_csv(bad).unwrap_err();
        assert!(err.contains("expected 4 fields"));
    }

    #[test]
    fn run_record_round_trips_with_timings() {
        let rec = RunRecord {
            algorithm: "HierAdMo-R".into(),
            curve: curve(),
            timings: PhaseBreakdown {
                local_steps_ms: 120.25,
                edge_agg_ms: 8.5,
                cloud_agg_ms: 3.125,
                eval_ms: 40.0,
            },
        };
        let json = run_to_json(&rec);
        assert!(json.contains("local_steps_ms"));
        let back = run_from_json(&json).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.timings.total_ms(), rec.timings.total_ms());
    }

    #[test]
    fn sim_run_record_round_trips_and_derives_time_to_target() {
        let timed: TimedCurve = [
            TimedPoint {
                seconds: 2.0,
                iteration: 10,
                train_loss: 1.0,
                test_loss: 1.0,
                test_accuracy: 0.4,
            },
            TimedPoint {
                seconds: 5.5,
                iteration: 20,
                train_loss: 0.4,
                test_loss: 0.5,
                test_accuracy: 0.85,
            },
        ]
        .into_iter()
        .collect();
        let rec = SimRunRecord::new(
            "HierAdMo",
            "deadline(q=0.5,300ms)",
            timed,
            0.8,
            vec![ActorUtilization {
                actor: "worker-0".into(),
                busy_seconds: 4.0,
                utilization: 0.72,
            }],
        );
        assert_eq!(rec.time_to_target_s, Some(5.5));
        let back = sim_run_from_json(&sim_run_to_json(&rec)).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn sim_run_record_faults_round_trip_and_default_empty() {
        use crate::timed::FaultCounters;

        let rec = SimRunRecord::new("HierAdMo", "full-sync", TimedCurve::new(), 0.9, Vec::new())
            .with_faults(vec![ActorFaults {
                actor: "worker-1".into(),
                counters: FaultCounters {
                    crashes: 3,
                    recovery_ms: 120.5,
                    retries: 7,
                    ..Default::default()
                },
            }]);
        let json = sim_run_to_json(&rec);
        assert!(json.contains("recovery_ms"));
        let back = sim_run_from_json(&json).unwrap();
        assert_eq!(back, rec);

        // Records written before fault injection existed carry no `faults`
        // key; they must still deserialize (to an empty list).
        let legacy = SimRunRecord::new("HierAdMo", "full-sync", TimedCurve::new(), 0.9, Vec::new());
        let mut json = sim_run_to_json(&legacy);
        json = json.replace(",\"faults\":[]", "");
        assert!(!json.contains("faults"));
        let back = sim_run_from_json(&json).unwrap();
        assert!(back.faults.is_empty());
    }

    #[test]
    fn sim_run_record_adversaries_round_trip_and_default_empty() {
        use crate::timed::AdversaryCounters;

        let rec = SimRunRecord::new("HierAdMo", "full-sync", TimedCurve::new(), 0.9, Vec::new())
            .with_adversaries(vec![ActorAdversaries {
                actor: "worker-2".into(),
                counters: AdversaryCounters {
                    poisoned_uploads: 4,
                    poisoned_momenta: 4,
                    ..Default::default()
                },
            }]);
        let json = sim_run_to_json(&rec);
        assert!(json.contains("poisoned_momenta"));
        let back = sim_run_from_json(&json).unwrap();
        assert_eq!(back, rec);

        // Records written before adversary injection existed carry no
        // `adversaries` key; they must still deserialize (to an empty list).
        let legacy = SimRunRecord::new("HierAdMo", "full-sync", TimedCurve::new(), 0.9, Vec::new());
        let mut json = sim_run_to_json(&legacy);
        json = json.replace(",\"adversaries\":[]", "");
        assert!(!json.contains("adversaries"));
        let back = sim_run_from_json(&json).unwrap();
        assert!(back.adversaries.is_empty());
    }

    #[test]
    fn sim_run_record_topology_round_trip_and_default_zero() {
        let rec = SimRunRecord::new("HierAdMo", "full-sync", TimedCurve::new(), 0.9, Vec::new())
            .with_topology(TopologyCounters {
                joins: 1,
                leaves: 2,
                migrations: 5,
                reformations: 1,
                orphaned_rounds: 3,
            });
        let json = sim_run_to_json(&rec);
        assert!(json.contains("orphaned_rounds"));
        let back = sim_run_from_json(&json).unwrap();
        assert_eq!(back, rec);

        // Records written before elastic topology existed carry no
        // `topology` key; they must still deserialize (to all-zero).
        let legacy = SimRunRecord::new("HierAdMo", "full-sync", TimedCurve::new(), 0.9, Vec::new());
        let mut json = sim_run_to_json(&legacy);
        let zero = format!(
            ",\"topology\":{}",
            serde_json::to_string(&TopologyCounters::default()).unwrap()
        );
        json = json.replace(&zero, "");
        assert!(!json.contains("topology"));
        let back = sim_run_from_json(&json).unwrap();
        assert!(back.topology.is_zero());
    }

    #[test]
    fn sim_run_record_stats_are_typed_numbers_and_default_for_legacy_json() {
        let timed: TimedCurve = [TimedPoint {
            seconds: 3.0,
            iteration: 10,
            train_loss: 0.5,
            test_loss: 0.6,
            test_accuracy: 0.75,
        }]
        .into_iter()
        .collect();
        let rec = SimRunRecord::new("HierAdMo", "full-sync", timed, 0.9, Vec::new())
            .with_run_stats(12_345, 67.5);
        assert_eq!(rec.final_accuracy, Some(0.75));
        let json = sim_run_to_json(&rec);
        // Typed numbers, not stringified cells.
        assert!(json.contains("\"events\":12345"));
        assert!(json.contains("\"simulated_seconds\":67.5"));
        assert!(json.contains("\"final_accuracy\":0.75"));
        let back = sim_run_from_json(&json).unwrap();
        assert_eq!(back, rec);

        // Records written before run statistics existed carry none of the
        // stats keys; they must still deserialize (to zero / None).
        let legacy = SimRunRecord::new("HierAdMo", "full-sync", TimedCurve::new(), 0.9, Vec::new());
        let mut json = sim_run_to_json(&legacy);
        for gone in [
            ",\"events\":0",
            ",\"simulated_seconds\":0.0",
            ",\"final_accuracy\":null",
        ] {
            assert!(json.contains(gone), "missing {gone} in {json}");
            json = json.replace(gone, "");
        }
        let back = sim_run_from_json(&json).unwrap();
        assert_eq!(back.events, 0);
        assert_eq!(back.simulated_seconds, 0.0);
        assert_eq!(back.final_accuracy, None);
    }

    #[test]
    fn bad_json_is_an_error_not_a_panic() {
        assert!(run_from_json("{not json").is_err());
        assert!(sim_run_from_json("42").is_err());
    }

    #[test]
    fn comparison_interleaves_algorithms() {
        let a = curve();
        let b = curve();
        let csv = comparison_to_csv(&[("HierAdMo", &a), ("FedAvg", &b)]);
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.contains("HierAdMo,10,"));
        assert!(csv.contains("FedAvg,20,"));
    }
}
