//! Exporters: convergence curves as CSV (for plotting) and JSON lines
//! (for archival next to `EXPERIMENTS.md`).

use std::fmt::Write as _;

use crate::{ConvergenceCurve, EvalPoint};

/// Renders a curve as CSV with a header row.
///
/// # Example
///
/// ```
/// use hieradmo_metrics::{ConvergenceCurve, EvalPoint, export};
///
/// let curve: ConvergenceCurve = [EvalPoint {
///     iteration: 10, train_loss: 0.5, test_loss: 0.6, test_accuracy: 0.8,
/// }].into_iter().collect();
/// let csv = export::curve_to_csv(&curve);
/// assert!(csv.starts_with("iteration,train_loss,test_loss,test_accuracy\n"));
/// assert!(csv.contains("10,"));
/// ```
pub fn curve_to_csv(curve: &ConvergenceCurve) -> String {
    let mut out = String::from("iteration,train_loss,test_loss,test_accuracy\n");
    for p in curve.points() {
        writeln!(
            out,
            "{},{},{},{}",
            p.iteration, p.train_loss, p.test_loss, p.test_accuracy
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Parses a curve back from [`curve_to_csv`] output.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed input.
pub fn curve_from_csv(csv: &str) -> Result<ConvergenceCurve, String> {
    let mut curve = ConvergenceCurve::new();
    for (lineno, line) in csv.lines().enumerate() {
        if lineno == 0 {
            if line != "iteration,train_loss,test_loss,test_accuracy" {
                return Err(format!("unexpected header: {line}"));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(format!(
                "line {}: expected 4 fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let parse_f = |s: &str| -> Result<f64, String> {
            s.parse().map_err(|e| format!("line {}: {e}", lineno + 1))
        };
        curve.push(EvalPoint {
            iteration: fields[0]
                .parse()
                .map_err(|e| format!("line {}: {e}", lineno + 1))?,
            train_loss: parse_f(fields[1])?,
            test_loss: parse_f(fields[2])?,
            test_accuracy: parse_f(fields[3])?,
        });
    }
    Ok(curve)
}

/// Multiple named curves side by side as CSV (one block per curve), for
/// figure-style comparisons.
///
/// # Panics
///
/// Panics if `curves` is empty.
pub fn comparison_to_csv(curves: &[(&str, &ConvergenceCurve)]) -> String {
    assert!(!curves.is_empty(), "need at least one curve");
    let mut out = String::from("algorithm,iteration,train_loss,test_loss,test_accuracy\n");
    for (name, curve) in curves {
        for p in curve.points() {
            writeln!(
                out,
                "{name},{},{},{},{}",
                p.iteration, p.train_loss, p.test_loss, p.test_accuracy
            )
            .expect("writing to String cannot fail");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> ConvergenceCurve {
        [
            EvalPoint {
                iteration: 10,
                train_loss: 1.5,
                test_loss: 1.6,
                test_accuracy: 0.4,
            },
            EvalPoint {
                iteration: 20,
                train_loss: 0.8,
                test_loss: 0.9,
                test_accuracy: 0.7,
            },
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn csv_round_trips() {
        let c = curve();
        let csv = curve_to_csv(&c);
        let back = curve_from_csv(&csv).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn rejects_bad_header_and_ragged_rows() {
        assert!(curve_from_csv("nope\n1,2,3,4").is_err());
        let bad = "iteration,train_loss,test_loss,test_accuracy\n1,2,3\n";
        let err = curve_from_csv(bad).unwrap_err();
        assert!(err.contains("expected 4 fields"));
    }

    #[test]
    fn comparison_interleaves_algorithms() {
        let a = curve();
        let b = curve();
        let csv = comparison_to_csv(&[("HierAdMo", &a), ("FedAvg", &b)]);
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.contains("HierAdMo,10,"));
        assert!(csv.contains("FedAvg,20,"));
    }
}
