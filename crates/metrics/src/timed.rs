//! Time-indexed metrics for event-driven co-simulation: accuracy as a
//! function of *simulated wall-clock time* (the honest version of the
//! paper's Fig. 2(h)/(l) time-to-accuracy axis), per-actor utilization, and
//! the per-phase duration breakdown persisted by bench runs.

use serde::{Deserialize, Serialize};

/// One evaluation of the global model, stamped with simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedPoint {
    /// Simulated seconds at which this evaluation's model existed.
    pub seconds: f64,
    /// Training-progress index at the evaluation (local iteration for
    /// synchronous runs; committed-local-steps for relaxed policies).
    pub iteration: usize,
    /// Mean training loss of the global model.
    pub train_loss: f64,
    /// Mean test loss of the global model.
    pub test_loss: f64,
    /// Test accuracy in `[0, 1]`.
    pub test_accuracy: f64,
}

/// Accuracy/loss as a function of simulated time.
///
/// The time axis is validated on construction: pushes must carry
/// non-decreasing `seconds` and strictly increasing `iteration`, so every
/// exported curve has a monotone simulated-time axis by construction.
///
/// # Example
///
/// ```
/// use hieradmo_metrics::timed::{TimedCurve, TimedPoint};
///
/// let mut c = TimedCurve::new();
/// c.push(TimedPoint { seconds: 1.5, iteration: 10, train_loss: 1.0, test_loss: 1.1, test_accuracy: 0.6 });
/// c.push(TimedPoint { seconds: 3.0, iteration: 20, train_loss: 0.5, test_loss: 0.6, test_accuracy: 0.9 });
/// assert_eq!(c.time_to_accuracy(0.85), Some(3.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimedCurve {
    points: Vec<TimedPoint>,
}

impl TimedCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        TimedCurve { points: Vec::new() }
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` decreases, `seconds` is not finite, or
    /// `iteration` is not strictly increasing.
    pub fn push(&mut self, point: TimedPoint) {
        assert!(
            point.seconds.is_finite() && point.seconds >= 0.0,
            "simulated time must be finite and non-negative, got {}",
            point.seconds
        );
        if let Some(last) = self.points.last() {
            assert!(
                point.seconds >= last.seconds,
                "simulated time must be monotone: {} after {}",
                point.seconds,
                last.seconds
            );
            assert!(
                point.iteration > last.iteration,
                "iterations must be strictly increasing: {} after {}",
                point.iteration,
                last.iteration
            );
        }
        self.points.push(point);
    }

    /// Borrows the points.
    pub fn points(&self) -> &[TimedPoint] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Simulated seconds until accuracy first reached `target`, if ever —
    /// the per-policy "time to X accuracy" number of the simrt experiments.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.test_accuracy >= target)
            .map(|p| p.seconds)
    }

    /// Accuracy at the last evaluation, if any.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.points.last().map(|p| p.test_accuracy)
    }

    /// Simulated seconds at the last evaluation, if any.
    pub fn final_seconds(&self) -> Option<f64> {
        self.points.last().map(|p| p.seconds)
    }
}

impl FromIterator<TimedPoint> for TimedCurve {
    fn from_iter<I: IntoIterator<Item = TimedPoint>>(iter: I) -> Self {
        let mut c = TimedCurve::new();
        for p in iter {
            c.push(p);
        }
        c
    }
}

/// How busy one simulated actor was over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActorUtilization {
    /// Actor label, e.g. `"worker-3"`, `"edge-0"`, `"cloud"`.
    pub actor: String,
    /// Simulated seconds the actor spent computing or transferring.
    pub busy_seconds: f64,
    /// `busy_seconds / total run seconds`, in `[0, 1]` (0 when the run
    /// took no simulated time).
    pub utilization: f64,
}

/// Fault-event tallies for one simulated actor, accumulated by the
/// co-simulation runtime's fault-injection layer.
///
/// Counters are additive over a run; `recovery_ms` is the summed downtime
/// so `recovery_ms / crashes` gives the mean recovery latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Transient crashes (each followed by a recovery) plus a permanent
    /// death, if one occurred.
    pub crashes: u64,
    /// Total downtime spent crashed before recovering, in milliseconds.
    pub recovery_ms: f64,
    /// Sends from this actor silently lost on the wire.
    pub messages_lost: u64,
    /// Delivered messages that were also duplicated in transit.
    pub messages_duplicated: u64,
    /// Duplicate arrivals observed (and suppressed) at this actor.
    pub duplicates_received: u64,
    /// Sends that failed with an observable transport error.
    pub transfer_failures: u64,
    /// Resends after a lost or failed attempt.
    pub retries: u64,
    /// Uploads lost because the sender crashed mid-transfer or died.
    pub lost_uploads: u64,
    /// Compute-delay straggler spikes suffered.
    pub delay_spikes: u64,
}

impl FaultCounters {
    /// Returns `true` when nothing ever went wrong for this actor.
    pub fn is_zero(&self) -> bool {
        *self == FaultCounters::default()
    }

    /// Folds a transfer's loss/failure/retry tallies into this actor's
    /// counters.
    pub fn add_transfer(&mut self, lost: u64, failures: u64, retries: u64, duplicated: bool) {
        self.messages_lost += lost;
        self.transfer_failures += failures;
        self.retries += retries;
        if duplicated {
            self.messages_duplicated += 1;
        }
    }
}

/// [`FaultCounters`] stamped with the actor they belong to, in the same
/// label scheme as [`ActorUtilization`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActorFaults {
    /// Actor label, e.g. `"worker-3"`, `"edge-0"`, `"cloud"`.
    pub actor: String,
    /// The tallies.
    pub counters: FaultCounters,
}

/// Churn-event tallies for one elastic run, accumulated by the elastic
/// topology layer as `ChurnPlan` events apply at cloud-round boundaries.
///
/// Counters are additive over a run; the all-zero default is what every
/// frozen-tree (empty-plan) run reports, so `is_zero` distinguishes
/// "static topology" from "elastic but quiet".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologyCounters {
    /// Workers that joined the live tree mid-run.
    pub joins: u64,
    /// Workers that left the live tree mid-run.
    pub leaves: u64,
    /// Workers that changed parent edge: explicit migrations, edge-failure
    /// re-homings, and re-formation moves alike.
    pub migrations: u64,
    /// Edge re-formation (similarity re-clustering) passes applied.
    pub reformations: u64,
    /// Worker-rounds orphaned by edge failures: each failed edge
    /// contributes one per member it stranded at the boundary.
    pub orphaned_rounds: u64,
}

impl TopologyCounters {
    /// Returns `true` when the topology never changed.
    pub fn is_zero(&self) -> bool {
        *self == TopologyCounters::default()
    }

    /// Folds another tally into this one (additive over run segments).
    pub fn merge(&mut self, other: &TopologyCounters) {
        self.joins += other.joins;
        self.leaves += other.leaves;
        self.migrations += other.migrations;
        self.reformations += other.reformations;
        self.orphaned_rounds += other.orphaned_rounds;
    }
}

/// Adversary-event tallies for one Byzantine actor, accumulated wherever
/// uploads are corrupted (the core driver's injection point or the
/// co-simulation runtime's mailbox hook).
///
/// Counters are additive over a run. An honest worker's counters stay at
/// the all-zero default, so `is_zero` distinguishes "honest" from
/// "Byzantine but idle".
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AdversaryCounters {
    /// Uploads this actor corrupted (one per edge aggregation it reached).
    pub poisoned_uploads: u64,
    /// Uploads whose *model* vector was corrupted.
    pub poisoned_models: u64,
    /// Uploads whose *momentum* vectors were corrupted — the
    /// HierAdMo-specific surface (Algorithm 1, lines 11–13).
    pub poisoned_momenta: u64,
    /// Calibrated-norm Gaussian noise vectors injected (each consumed one
    /// adversary-stream draw of the model dimension).
    pub noise_injections: u64,
}

impl AdversaryCounters {
    /// Returns `true` when this actor never corrupted anything.
    pub fn is_zero(&self) -> bool {
        *self == AdversaryCounters::default()
    }
}

/// [`AdversaryCounters`] stamped with the actor they belong to, in the
/// same label scheme as [`ActorUtilization`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActorAdversaries {
    /// Actor label, e.g. `"worker-3"`.
    pub actor: String,
    /// The tallies.
    pub counters: AdversaryCounters,
}

/// Per-phase durations of a run, in milliseconds — the serializable form
/// of `hieradmo-core`'s `PhaseTimings`, surfaced in the JSON export so
/// bench runs persist where their wall-clock went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Worker local steps, summed over all ticks.
    pub local_steps_ms: f64,
    /// Edge aggregations.
    pub edge_agg_ms: f64,
    /// Cloud aggregations.
    pub cloud_agg_ms: f64,
    /// Global-model evaluations.
    pub eval_ms: f64,
}

impl PhaseBreakdown {
    /// Total across all phases.
    pub fn total_ms(&self) -> f64 {
        self.local_steps_ms + self.edge_agg_ms + self.cloud_agg_ms + self.eval_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(s: f64, it: usize, acc: f64) -> TimedPoint {
        TimedPoint {
            seconds: s,
            iteration: it,
            train_loss: 1.0,
            test_loss: 1.0,
            test_accuracy: acc,
        }
    }

    #[test]
    fn time_to_accuracy_reads_the_time_axis() {
        let c: TimedCurve = [pt(1.0, 10, 0.2), pt(2.5, 20, 0.8), pt(4.0, 30, 0.9)]
            .into_iter()
            .collect();
        assert_eq!(c.time_to_accuracy(0.5), Some(2.5));
        assert_eq!(c.time_to_accuracy(0.95), None);
        assert_eq!(c.final_accuracy(), Some(0.9));
        assert_eq!(c.final_seconds(), Some(4.0));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn equal_timestamps_are_allowed_for_distinct_iterations() {
        // Zero-cost events may share a timestamp; the iteration axis still
        // orders them.
        let mut c = TimedCurve::new();
        c.push(pt(1.0, 1, 0.1));
        c.push(pt(1.0, 2, 0.2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn decreasing_time_panics() {
        let mut c = TimedCurve::new();
        c.push(pt(2.0, 1, 0.1));
        c.push(pt(1.0, 2, 0.2));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_iteration_panics() {
        let mut c = TimedCurve::new();
        c.push(pt(1.0, 5, 0.1));
        c.push(pt(2.0, 5, 0.2));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_panics() {
        let mut c = TimedCurve::new();
        c.push(pt(f64::NAN, 1, 0.1));
    }

    #[test]
    fn phase_breakdown_totals() {
        let b = PhaseBreakdown {
            local_steps_ms: 10.0,
            edge_agg_ms: 2.0,
            cloud_agg_ms: 1.0,
            eval_ms: 3.0,
        };
        assert_eq!(b.total_ms(), 16.0);
    }
}
